package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dcmodel/internal/obs"
	"dcmodel/internal/optimize"
)

var updateEnvelope = flag.Bool("update-envelope", false, "regenerate the query-envelope golden file under testdata/")

// provisionBody is a small, fast search request: a generous SLO over a
// narrow space, with the DES budgets cut down so validation stays cheap.
const provisionBody = `{"request":{"objective":{"target_seconds":0.5},"space":{"max_servers":8},"validate_tasks":2000,"validate_samples":2000}}`

// postProvision sends one provisioning request and returns the raw response.
func postProvision(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/provision", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestProvisionEndpoint covers the request contract of /v1/provision: cold
// and bad inputs are rejected with the right statuses, a warm daemon
// answers with a full plan, and infeasibility is in-band — 200 with
// plan.feasible false — exactly like what-if saturation.
func TestProvisionEndpoint(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold daemon: 503, like the other query endpoints.
	resp, _ := postProvision(t, ts, provisionBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold provision status = %d, want 503", resp.StatusCode)
	}

	// GET before any auto-reprovision run: nothing published yet.
	getResp, err := http.Get(ts.URL + "/v1/provision")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET provision status = %d, want 404 before any auto plan", getResp.StatusCode)
	}

	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{
		`{`,                   // malformed JSON
		`{"unknown_field":1}`, // unknown field
		`{"model":"mystery","request":{"objective":{"target_seconds":1}}}`,              // unknown model
		`{"request":{"spec":"mapreduce","objective":{"target_seconds":1}}}`,             // offline-only spec
		`{"request":{"model":"kooza","objective":{"target_seconds":1}}}`,                // offline-only model field
		`{"request":{"objective":{"target_seconds":-1}}}`,                               // invalid objective
		`{"request":{"objective":{"target_seconds":1},"space":{"platforms":["vax"]}}}`,  // unknown platform
		`{"request":{"objective":{"target_seconds":1},"space":{"dvfs_states":["P7"]}}}`, // unknown DVFS state
	} {
		resp, body := postProvision(t, ts, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("provision %s status = %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}

	resp, body := postProvision(t, ts, provisionBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provision status = %d (%s), want 200", resp.StatusCode, body)
	}
	var out struct {
		Model     string `json:"model"`
		TrainedOn int    `json:"trained_on"`
		Request   struct {
			Strategy string `json:"strategy"`
			Seed     int64  `json:"seed"`
		} `json:"request"`
		Plan optimize.Plan `json:"plan"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("provision decode: %v\n%s", err, body)
	}
	if out.Model != "kooza" || out.TrainedOn != 400 {
		t.Errorf("provision envelope header = %q/%d, want kooza/400", out.Model, out.TrainedOn)
	}
	if out.Request.Strategy != optimize.StrategyCoordinate || out.Request.Seed != 1 {
		t.Errorf("provision echoed request not defaulted: %+v", out.Request)
	}
	if !out.Plan.Feasible || out.Plan.Chosen.Servers < 1 {
		t.Errorf("provision plan not feasible: %+v", out.Plan.Chosen)
	}
	if out.Plan.Validated == nil || !out.Plan.Validated.Passed {
		t.Errorf("provision plan missing a passing DES validation: %+v", out.Plan.Validated)
	}
	if out.Plan.TwinEvals <= out.Plan.DESRuns || out.Plan.DESRuns < 1 {
		t.Errorf("twin-first inversion: twin_evals=%d des_runs=%d", out.Plan.TwinEvals, out.Plan.DESRuns)
	}

	// An impossible SLO is an answer, not an error: 200 with feasible=false
	// and the closest miss, mirroring what-if's in-band saturation.
	resp, body = postProvision(t, ts, `{"request":{"objective":{"target_seconds":1e-9},"space":{"max_servers":4}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infeasible provision status = %d (%s), want 200 with feasible=false", resp.StatusCode, body)
	}
	var infeasible struct {
		Plan optimize.Plan `json:"plan"`
	}
	if err := json.Unmarshal(body, &infeasible); err != nil {
		t.Fatal(err)
	}
	if infeasible.Plan.Feasible {
		t.Error("impossible SLO reported feasible")
	}
	if infeasible.Plan.Chosen.Servers < 1 || len(infeasible.Plan.Trail) == 0 {
		t.Errorf("infeasible plan lost its closest miss or audit trail: %+v", infeasible.Plan.Chosen)
	}
}

// TestProvisionByteStable pins the wire determinism contract shared with
// /v1/whatif: the same request against the same warm generation returns
// byte-identical plans, every time — the search is seed-stable and the DES
// validation seeds derive from configuration fingerprints, not run order.
func TestProvisionByteStable(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{
		provisionBody,
		`{"request":{"objective":{"target_seconds":0.5},"space":{"max_servers":8},"strategy":"evolve","validate_tasks":2000,"validate_samples":2000}}`,
		`{"request":{"objective":{"target_seconds":0.5},"space":{"max_servers":8},"workers":4,"validate_tasks":2000,"validate_samples":2000}}`,
	} {
		var first []byte
		for i := 0; i < 3; i++ {
			resp, b := postProvision(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("provision %s status = %d (%s)", body, resp.StatusCode, b)
			}
			if i == 0 {
				first = b
				continue
			}
			if !bytes.Equal(b, first) {
				t.Fatalf("provision %s response drifted between calls:\n%s\nvs\n%s", body, first, b)
			}
		}
	}
}

// TestProvisionStageSpans asserts, with the daemon's own stage metrics,
// that a provisioning search runs the compile/characterize/search stages
// and — unlike the what-if fast path — rides the bounded work queue.
func TestProvisionStageSpans(t *testing.T) {
	cfg := quietConfig()
	o := obs.DefaultOptions()
	cfg.Obs = &o
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}
	resp, body := postProvision(t, ts, provisionBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provision status = %d (%s)", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mb)
	for _, want := range []string{
		`stage="queue.wait"`,
		`stage="provision.compile"`,
		`stage="provision.characterize"`,
		`stage="provision.search"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s after a provisioning search", want)
		}
	}
	if !strings.Contains(metrics, "dcmodeld_provision_total 1") {
		t.Error("metrics missing dcmodeld_provision_total 1 after a successful search")
	}
}

// jsonShape flattens a decoded JSON value into sorted "path kind" lines —
// the structural skeleton of a response, independent of its numbers.
func jsonShape(prefix string, v any, out map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		out[prefix] = "object"
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			jsonShape(prefix+"."+k, x[k], out)
		}
	case []any:
		out[prefix] = "array"
		if len(x) > 0 {
			jsonShape(prefix+"[]", x[0], out)
		}
	case float64:
		out[prefix] = "number"
	case string:
		out[prefix] = "string"
	case bool:
		out[prefix] = "bool"
	default:
		out[prefix] = "null"
	}
}

// TestQueryEnvelopeGolden pins the shared envelope conventions of the two
// query endpoints: /v1/whatif and /v1/provision answer with the same
// model/trained_on header, echo their (defaulted) input, and carry the
// result — answer and plan respectively — with in-band degradation flags
// (answer.stable, plan.feasible). The full structural skeleton of both
// responses is golden-pinned so an envelope change to either endpoint is a
// deliberate, reviewed act.
func TestQueryEnvelopeGolden(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}

	shapes := map[string]map[string]string{}
	for name, post := range map[string]func() (*http.Response, []byte){
		"whatif":    func() (*http.Response, []byte) { return postWhatIf(t, ts, `{"query":{"load_factor":2}}`) },
		"provision": func() (*http.Response, []byte) { return postProvision(t, ts, provisionBody) },
	} {
		resp, body := post()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d (%s)", name, resp.StatusCode, body)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		shape := map[string]string{}
		jsonShape("$", v, shape)
		shapes[name] = shape
	}

	// The conventions both envelopes share, asserted directly so a golden
	// regeneration cannot silently drop them.
	for name, result := range map[string]string{"whatif": "answer", "provision": "plan"} {
		shape := shapes[name]
		if shape["$.model"] != "string" || shape["$.trained_on"] != "number" {
			t.Errorf("%s envelope lost its model/trained_on header: %v %v", name, shape["$.model"], shape["$.trained_on"])
		}
		if shape["$."+result] != "object" {
			t.Errorf("%s envelope lost its %s result object", name, result)
		}
	}
	if shapes["whatif"]["$.answer.stable"] != "bool" {
		t.Error("whatif lost its in-band answer.stable flag")
	}
	if shapes["provision"]["$.plan.feasible"] != "bool" {
		t.Error("provision lost its in-band plan.feasible flag")
	}

	var lines []string
	for _, name := range []string{"whatif", "provision"} {
		paths := make([]string, 0, len(shapes[name]))
		for p := range shapes[name] {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			lines = append(lines, fmt.Sprintf("%s %s %s", name, p, shapes[name][p]))
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "envelope.golden")
	if *updateEnvelope {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve/ -run QueryEnvelopeGolden -update-envelope` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("query envelope drifted from the golden skeleton (re-run with -update-envelope only if the change is intentional)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAutoReprovisionOnDrift is the closed-loop acceptance test: a daemon
// armed with an AutoProvision request re-runs the provisioning search when
// the drift trigger swaps in a fresh model generation, publishes the plan
// on GET /v1/provision — and serving traffic rides through the whole episode
// with zero dropped requests, because the search runs beside the work
// queue, not on it.
func TestAutoReprovisionOnDrift(t *testing.T) {
	cfg := quietConfig()
	cfg.Window = 256
	cfg.RetrainMin = 32
	cfg.DriftP = 0.01
	cfg.DriftMinTransitions = 64
	cfg.StorageRegions = 8
	cfg.DiskBlocks = 8000
	cfg.AutoProvision = &optimize.Request{
		Objective:       optimize.Objective{TargetSeconds: 1},
		Space:           optimize.Space{MaxServers: 4},
		ValidateTasks:   2000,
		ValidateSamples: 2000,
	}
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	regimeA := []int{0, 1, 2}
	regimeB := []int{5, 6, 7}

	// Warm up on regime A; in-distribution traffic must not reprovision.
	if _, _, err := s.Ingest(regimeTrace(128, regimeA, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest(regimeTrace(64, regimeA, 128)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LastAutoPlan(); ok {
		t.Fatal("auto plan published before any drift retrain")
	}

	// In-flight query traffic, running across the drift episode.
	const clients, queriesEach = 8 * 5, 1
	var wg sync.WaitGroup
	codes := make(chan int, clients*queriesEach)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < queriesEach; j++ {
				resp, err := http.Post(ts.URL+"/v1/whatif", "application/json",
					strings.NewReader(`{"query":{"load_factor":1}}`))
				if err != nil {
					codes <- -1
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codes <- resp.StatusCode
			}
		}()
	}

	// Distribution shift: the drift trigger must retrain AND reprovision.
	retrained, reason, err := s.Ingest(regimeTrace(64, regimeB, 192))
	if err != nil {
		t.Fatal(err)
	}
	if !retrained || reason != ReasonDrift {
		t.Fatalf("shifted batch: retrained=%v reason=%q, want drift", retrained, reason)
	}

	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("in-flight whatif dropped during auto-reprovision: status %d", code)
		}
	}

	// The search runs on its own goroutine; poll until the plan publishes.
	deadline := time.Now().Add(10 * time.Second)
	var plan optimize.Plan
	for {
		var ok bool
		if plan, ok = s.LastAutoPlan(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no auto-reprovision plan published within 10s of the drift retrain")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if plan.TwinEvals == 0 || len(plan.Trail) == 0 {
		t.Errorf("auto plan has no audit trail: twin_evals=%d trail=%d", plan.TwinEvals, len(plan.Trail))
	}

	// The published plan is served on GET /v1/provision.
	resp, err := http.Get(ts.URL + "/v1/provision")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET provision status = %d (%s), want 200 after auto-reprovision", resp.StatusCode, body)
	}
	var out struct {
		Model     string        `json:"model"`
		TrainedOn int           `json:"trained_on"`
		Plan      optimize.Plan `json:"plan"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET provision decode: %v\n%s", err, body)
	}
	if out.Model != "kooza" || out.TrainedOn == 0 {
		t.Errorf("auto plan envelope = %q/%d, want kooza model trained on the drifted window", out.Model, out.TrainedOn)
	}
}
