// Package serve is the model-serving daemon behind cmd/dcmodeld: a
// stdlib-only HTTP service that keeps the paper's workload models warm
// under live traffic. It ingests trace spans over a streaming POST
// endpoint into a sliding window, maintains the KOOZA / in-breadth /
// in-depth models with an online-training loop (incremental Markov
// transition counts, periodic alias-table refreeze, and a chi-square
// drift trigger that forces retrains), and answers synthesis,
// characterization and replay queries from a bounded work queue with
// explicit backpressure: a full queue is a 429 with Retry-After, never an
// unbounded buffer.
//
// Endpoints:
//
//	POST /v1/ingest       stream trace spans (WriteCSV format) into the window
//	GET  /v1/synthesize   generate a synthetic workload from a warm model
//	GET  /v1/characterize cross-examination scorecard of the warm models
//	POST /v1/replay       replay a streamed trace on the simulated platform
//	POST /v1/whatif       closed-form what-if query against a warm model's analytical twin
//	*    /v1/faults       fault-scenario admin: GET reports, POST arms, DELETE disarms
//	GET  /metrics         plain-text counters, gauges and latency histograms
//	GET  /healthz         liveness + model warmth + breaker/fault state
//
// Two failure-containment mechanisms keep one bad input from taking the
// daemon down: a retrain circuit breaker (consecutive retrain failures
// open it; the last good model generation keeps serving until a cooldown
// or a successful manual Retrain closes it), and the fault scenario, which
// degrades only the replay platform — synthesis and ingest stay healthy
// while replays exercise retries, failovers and re-replication.
package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dcmodel/internal/fault"
	"dcmodel/internal/gfs"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/markov"
	"dcmodel/internal/obs"
	"dcmodel/internal/optimize"
	"dcmodel/internal/par"
	"dcmodel/internal/replay"
	"dcmodel/internal/trace"
)

// Config tunes the daemon. DefaultConfig returns the production defaults;
// zero fields of a hand-built Config are filled with the same defaults by
// New.
type Config struct {
	// Window is the sliding-window capacity in requests.
	Window int
	// QueueDepth bounds the pending work queue; a full queue returns 429.
	QueueDepth int
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// MaxSynth caps the n of one synthesize request.
	MaxSynth int
	// MaxIngestBytes caps one ingest request body.
	MaxIngestBytes int64
	// RequestTimeout is the per-request deadline for queued work.
	RequestTimeout time.Duration
	// RetrainMin is the minimum number of newly ingested requests before
	// a retrain is considered.
	RetrainMin int
	// RetrainInterval is the staleness bound: once the served model is
	// older than this and RetrainMin new requests arrived, a retrain fires
	// even without drift.
	RetrainInterval time.Duration
	// PollInterval is the background staleness-check cadence.
	PollInterval time.Duration
	// DriftP is the chi-square p-value below which the ingested stream is
	// declared drifted from the served model, forcing a retrain.
	DriftP float64
	// DriftMinTransitions is the minimum observed storage transitions
	// before the drift test is consulted.
	DriftMinTransitions int64
	// BreakerThreshold is how many consecutive retrain failures open the
	// retrain circuit breaker. While open, the drift/staleness triggers
	// stop attempting retrains (the last good generation keeps serving)
	// until BreakerCooldown elapses, so one poisoned window cannot wedge
	// the poll loop into a failing-retrain-per-second spin.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker suppresses automatic
	// retrains. The first trigger after the cooldown is the half-open
	// probe: success closes the breaker, failure reopens it.
	BreakerCooldown time.Duration
	// StorageRegions is the storage Markov state count (shared by the
	// KOOZA trainer and the drift quantization).
	StorageRegions int
	// DiskBlocks is the fixed LBN address-space size used to map LBNs to
	// regions. It must be fixed (not inferred per batch) so the drift
	// accumulator and every retrained model share one quantization.
	DiskBlocks int64
	// Smoothing is the Laplace smoothing of the trained chains.
	Smoothing float64
	// Platform is the replay hardware; nil NewServer selects the default
	// GFS chunkserver.
	Platform replay.Platform
	// Obs arms the observability layer: live span sampling served by
	// GET /v1/traces, per-stage wall/alloc histograms, and optionally the
	// /debug/pprof/ profiling endpoints. nil keeps the daemon's /metrics
	// output byte-identical to a daemon built before the layer existed.
	Obs *obs.Options
	// AutoProvision, when non-nil, arms the closed-loop reprovisioning
	// hook: every drift-triggered retrain re-runs the provisioning search
	// with this request against the fresh model generation, in the
	// background, and publishes the plan on GET /v1/provision. The
	// request's offline-only fields (Spec, Model, Trace) are ignored —
	// the daemon always provisions for its ingested window.
	AutoProvision *optimize.Request
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Window:              8192,
		QueueDepth:          64,
		Workers:             0,
		MaxSynth:            200_000,
		MaxIngestBytes:      256 << 20,
		RequestTimeout:      30 * time.Second,
		RetrainMin:          64,
		RetrainInterval:     30 * time.Second,
		PollInterval:        time.Second,
		DriftP:              0.001,
		DriftMinTransitions: 512,
		BreakerThreshold:    3,
		BreakerCooldown:     time.Minute,
		StorageRegions:      32,
		DiskBlocks:          128 << 20,
		Smoothing:           0.01,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.MaxSynth <= 0 {
		c.MaxSynth = d.MaxSynth
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = d.MaxIngestBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.RetrainMin <= 0 {
		c.RetrainMin = d.RetrainMin
	}
	if c.RetrainInterval <= 0 {
		c.RetrainInterval = d.RetrainInterval
	}
	if c.PollInterval <= 0 {
		c.PollInterval = d.PollInterval
	}
	if c.DriftP <= 0 {
		c.DriftP = d.DriftP
	}
	if c.DriftMinTransitions <= 0 {
		c.DriftMinTransitions = d.DriftMinTransitions
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.StorageRegions <= 0 {
		c.StorageRegions = d.StorageRegions
	}
	if c.DiskBlocks <= 0 {
		c.DiskBlocks = d.DiskBlocks
	}
	if c.Smoothing <= 0 {
		c.Smoothing = d.Smoothing
	}
	if c.Platform.NewServer == nil {
		// Only the hardware constructor is defaulted: a Faults scenario or
		// FaultStream set on an otherwise-zero Platform must survive.
		c.Platform.NewServer = gfs.DefaultServerHW
	}
	return c
}

// modelSet is one atomically swapped generation of warm models.
type modelSet struct {
	Kooza     *kooza.Model
	InBreadth *inbreadth.Model
	InDepth   *indepth.Model
	// RefStorage is the pooled storage-region chain the drift test
	// compares freshly ingested transitions against.
	RefStorage *markov.Chain
	TrainedAt  time.Time
	TrainedOn  int   // window requests trained on
	TotalAt    int64 // window.total at training time
}

// Server is the daemon: sliding window, warm models, bounded work queue.
type Server struct {
	cfg             Config
	blocksPerRegion int64

	win     *window
	pool    *par.Pool
	metrics *metrics
	model   atomic.Pointer[modelSet]

	// ingestMu serializes ingestion and retraining, keeping the drift
	// accumulator consistent with the window contents. It also guards the
	// retrain circuit breaker state below.
	ingestMu     sync.Mutex
	drift        *markov.Accumulator
	retrainFails int       // consecutive automatic retrain failures
	breakerUntil time.Time // automatic retrains suppressed until then

	// faults is the armed fault scenario for degraded replay (nil =
	// healthy). Swapped atomically by the /v1/faults admin endpoint.
	faults atomic.Pointer[fault.Config]

	// Closed-loop reprovisioning state: the last auto-published plan
	// (GET /v1/provision), the single-flight guard, and the WaitGroup
	// Close drains so no search outlives the daemon.
	autoPlan       atomic.Pointer[provisionResponse]
	reprovisioning atomic.Bool
	provWG         sync.WaitGroup

	// Observability (nil unless cfg.Obs arms the layer): the live tracer
	// head-sampling pipeline requests, the ring buffer behind
	// GET /v1/traces, and the stage histogram families.
	spanner    *obs.Spanner
	traces     *obs.TraceRing
	stageSecs  *obs.HistogramVec
	stageAlloc *obs.HistogramVec

	mux      *http.ServeMux
	closed   atomic.Bool
	stopPoll chan struct{}
	pollWG   sync.WaitGroup
}

// New builds a Server from cfg (zero fields defaulted) and starts its
// worker pool and background staleness poller. Callers must Close it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DriftP >= 1 {
		return nil, fmt.Errorf("serve: DriftP must be in (0,1), got %g", cfg.DriftP)
	}
	if cfg.Window < 3 {
		return nil, fmt.Errorf("serve: window must hold >= 3 requests, got %d", cfg.Window)
	}
	bpr := cfg.DiskBlocks / int64(cfg.StorageRegions)
	if bpr < 1 {
		bpr = 1
	}
	acc, err := markov.NewAccumulator(cfg.StorageRegions, cfg.Smoothing)
	if err != nil {
		return nil, fmt.Errorf("serve: drift accumulator: %w", err)
	}
	s := &Server{
		cfg:             cfg,
		blocksPerRegion: bpr,
		win:             newWindow(cfg.Window),
		pool:            par.NewPool(cfg.Workers, cfg.QueueDepth),
		metrics:         newMetrics(),
		drift:           acc,
		stopPoll:        make(chan struct{}),
	}
	if cfg.Platform.Faults != nil {
		// A scenario armed on the configured platform seeds the admin
		// state, so /v1/faults reports and can disarm it.
		armed := cfg.Platform.Faults.WithDefaults()
		if err := armed.Validate(); err != nil {
			return nil, fmt.Errorf("serve: platform fault scenario: %w", err)
		}
		s.faults.Store(&armed)
	}
	if cfg.Obs != nil {
		o := cfg.Obs.WithDefaults()
		s.traces = obs.NewTraceRing(o.TraceCapacity)
		if o.SampleEvery >= 1 {
			s.spanner, err = obs.NewSpanner(o.SampleEvery, obs.Tee(s.traces, o.Recorder))
			if err != nil {
				return nil, fmt.Errorf("serve: tracer: %w", err)
			}
		}
		s.stageSecs, s.stageAlloc = s.metrics.stageSeconds, s.metrics.stageAlloc
	}
	// Gauges owned by other components render as the bare tail of the
	// exposition, collected at scrape time.
	s.metrics.reg.OnScrape(s.scrapeGauges)
	s.mux = s.buildMux()
	s.pollWG.Add(1)
	go s.pollLoop()
	return s, nil
}

// Faults returns the armed fault scenario for degraded replay, or nil when
// the daemon replays on healthy hardware.
func (s *Server) Faults() *fault.Config { return s.faults.Load() }

// ArmFaults validates and arms a fault scenario: subsequent /v1/replay
// work runs on the degraded platform. It is the programmatic sibling of
// POST /v1/faults.
func (s *Server) ArmFaults(cfg fault.Config) error {
	armed := cfg.WithDefaults()
	if err := armed.Validate(); err != nil {
		return err
	}
	s.faults.Store(&armed)
	return nil
}

// DisarmFaults returns replay to healthy hardware.
func (s *Server) DisarmFaults() { s.faults.Store(nil) }

// replayPlatform is the configured platform with the armed fault scenario
// (if any) applied.
func (s *Server) replayPlatform() replay.Platform {
	p := s.cfg.Platform
	p.Faults = s.faults.Load()
	return p
}

// pollLoop is the background staleness ticker: it fires retrains that
// ingestion alone would not (e.g. a quiet stream that drifted earlier).
func (s *Server) pollLoop() {
	defer s.pollWG.Done()
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopPoll:
			return
		case <-t.C:
			s.ingestMu.Lock()
			s.maybeRetrainLocked(nil)
			s.ingestMu.Unlock()
		}
	}
}

// Close drains the daemon: stops the poller, stops admitting queued work
// and waits for in-flight jobs. It does not wait for HTTP connections —
// pair it with http.Server.Shutdown (Serve does both).
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stopPoll)
	s.pollWG.Wait()
	s.provWG.Wait()
	s.pool.Close()
}

// Models returns the currently served model generation (nil while cold).
func (s *Server) Models() (kz *kooza.Model, ib *inbreadth.Model, id *indepth.Model, trainedOn int) {
	ms := s.model.Load()
	if ms == nil {
		return nil, nil, nil, 0
	}
	return ms.Kooza, ms.InBreadth, ms.InDepth, ms.TrainedOn
}

// regionOf maps an LBN into the fixed drift/storage quantization.
func (s *Server) regionOf(lbn int64) int {
	if lbn < 0 {
		return 0
	}
	st := int(lbn / s.blocksPerRegion)
	if st >= s.cfg.StorageRegions {
		return s.cfg.StorageRegions - 1
	}
	return st
}

// ingestOne folds one decoded request into the window and the drift
// accumulator. Callers hold ingestMu.
func (s *Server) ingestOne(req trace.Request) {
	var seq []int
	for _, sp := range req.Spans {
		if sp.Subsystem == trace.Storage {
			seq = append(seq, s.regionOf(sp.LBN))
		}
	}
	if len(seq) > 0 {
		// States are in range by construction, so Observe cannot fail.
		_ = s.drift.Observe(seq)
	}
	s.win.add(req)
	s.metrics.ingested.Add(1)
}

// Ingest folds a whole trace into the window (the programmatic sibling of
// POST /v1/ingest, used by tests and embedders), then runs the online
// training decision once.
func (s *Server) Ingest(tr *trace.Trace) (retrained bool, reason string, err error) {
	if tr == nil || tr.Len() == 0 {
		return false, "", trace.ErrEmptyTrace
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for _, r := range tr.Requests {
		s.ingestOne(r)
	}
	return s.maybeRetrainLocked(nil)
}
