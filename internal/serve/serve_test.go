package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// gfsTrace simulates a small GFS workload for ingest bodies.
func gfsTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	cluster, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cluster.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 200},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func traceCSV(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// quietConfig disables the background triggers so tests drive retraining
// explicitly.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.PollInterval = time.Hour
	cfg.RetrainInterval = time.Hour
	return cfg
}

// TestLifecycle is the end-to-end acceptance test: ingest a GFS trace over
// HTTP, then hammer /v1/synthesize with 96 concurrent requests against a
// bounded queue and assert every response is a clean 200 or an explicit
// backpressure/deadline status — never a hang, never a dropped body.
func TestLifecycle(t *testing.T) {
	cfg := quietConfig()
	cfg.Window = 2048
	cfg.QueueDepth = 16
	cfg.Workers = 4
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold daemon refuses queries but reports itself alive.
	resp, err := http.Get(ts.URL + "/v1/synthesize?n=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold synthesize status = %d, want 503", resp.StatusCode)
	}

	// Stream a trace in; the first trainable window trains immediately.
	body := traceCSV(t, gfsTrace(t, 400, 1))
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Ingested  int    `json:"ingested"`
		Window    int    `json:"window"`
		Retrained bool   `json:"retrained"`
		Reason    string `json:"retrain_reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, want 200", resp.StatusCode)
	}
	if ing.Ingested != 400 || ing.Window != 400 {
		t.Fatalf("ingest = %+v, want 400 requests in window", ing)
	}
	if !ing.Retrained || ing.Reason != ReasonCold {
		t.Fatalf("first ingest retrained=%v reason=%q, want cold retrain", ing.Retrained, ing.Reason)
	}

	var hz struct {
		Warm      bool `json:"warm"`
		TrainedOn int  `json:"trained_on"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.Warm || hz.TrainedOn != 400 {
		t.Fatalf("healthz = %+v, want warm model trained on 400", hz)
	}

	// Parameter validation: bad values are 400s, not clamps.
	for _, q := range []string{"n=0", "n=-5", "seed=0", "seed=-1", "seed=x", "model=bogus", "format=xml"} {
		resp, err := http.Get(ts.URL + "/v1/synthesize?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("synthesize?%s status = %d, want 400", q, resp.StatusCode)
		}
	}

	// Concurrent load: 96 clients against a 16-deep queue. Every request
	// must resolve to 200 (served), 429 (backpressure) or 504 (deadline).
	const clients = 96
	codes := make([]int, clients)
	bodies := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"kooza", "inbreadth", "indepth"}[i%3]
			url := fmt.Sprintf("%s/v1/synthesize?n=150&seed=%d&model=%s", ts.URL, i+1, model)
			resp, err := http.Get(url)
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = len(b)
			if resp.StatusCode == http.StatusOK {
				tr, err := trace.ReadCSV(bytes.NewReader(b))
				if err != nil || tr.Len() != 150 {
					t.Errorf("client %d: bad 200 body: err=%v len=%d", i, err, tr.Len())
				}
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Errorf("client %d: 429 without Retry-After", i)
			}
		}(i)
	}
	wg.Wait()
	served, rejected, timedOut := 0, 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			rejected++
		case http.StatusGatewayTimeout:
			timedOut++
		default:
			t.Fatalf("client %d: unexpected status %d", i, c)
		}
	}
	if served == 0 {
		t.Fatal("no synthesize request was served under load")
	}
	t.Logf("load: %d served, %d rejected (429), %d deadline (504)", served, rejected, timedOut)

	// Characterization of the warm models.
	resp, err = http.Get(ts.URL + "/v1/characterize?n=150&seed=7")
	if err != nil {
		t.Fatal(err)
	}
	var ch struct {
		TrainedOn int `json:"trained_on"`
		Scores    []struct {
			Name string `json:"name"`
		} `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize status = %d, want 200", resp.StatusCode)
	}
	if len(ch.Scores) != 3 || ch.TrainedOn != 400 {
		t.Fatalf("characterize = %+v, want 3 approaches trained on 400", ch)
	}

	// Replay round-trips a trace with timings filled in.
	resp, err = http.Post(ts.URL+"/v1/replay", "text/csv", bytes.NewReader(traceCSV(t, gfsTrace(t, 50, 2))))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.ReadCSV(resp.Body)
	resp.Body.Close()
	if err != nil || replayed.Len() != 50 {
		t.Fatalf("replay: err=%v len=%d, want 50 requests", err, replayed.Len())
	}

	// Metrics expose the request counters and queue/window gauges.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`dcmodeld_requests_total{handler="synthesize",code="200"}`,
		"dcmodeld_request_seconds_bucket",
		"dcmodeld_retrain_total 1",
		"dcmodeld_ingested_requests_total 400",
		"dcmodeld_window_requests 400",
		"dcmodeld_queue_depth",
		`dcmodeld_window_spans{subsystem="storage"}`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if rejected > 0 && !strings.Contains(string(mb), "dcmodeld_queue_rejected_total "+fmt.Sprint(rejected)) {
		t.Errorf("metrics rejected counter does not match %d observed 429s", rejected)
	}

	// After Close the daemon refuses new work instead of hanging.
	s.Close()
	resp, err = http.Get(ts.URL + "/v1/synthesize?n=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close synthesize status = %d, want 503", resp.StatusCode)
	}
}

// TestBackpressureDeterministic pins the 429 path exactly: with one worker
// wedged and the one queue slot full, the next request must be refused
// immediately, and served again once the queue drains.
func TestBackpressureDeterministic(t *testing.T) {
	cfg := quietConfig()
	cfg.QueueDepth = 1
	cfg.Workers = 1
	s := newTestServer(t, cfg)
	if _, _, err := s.Ingest(gfsTrace(t, 100, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(running); <-block }) {
		t.Fatal("could not submit the wedge job")
	}
	<-running
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue slot")
	}

	resp, err := http.Get(ts.URL + "/v1/synthesize?n=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status with full queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}

	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/synthesize?n=10")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeGracefulDrain exercises the SIGTERM path: cancel the serve
// context while requests are in flight and assert every admitted request
// completes with a full body — nothing is dropped mid-drain.
func TestServeGracefulDrain(t *testing.T) {
	cfg := quietConfig()
	cfg.QueueDepth = 64
	cfg.Workers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest(gfsTrace(t, 200, 1)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to answer.
	for i := 0; ; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// In-flight load: big-enough syntheses that the drain overlaps them.
	const clients = 8
	type result struct {
		code int
		n    int
		err  error
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			url := fmt.Sprintf("%s/v1/synthesize?n=5000&seed=%d", base, i+1)
			resp, err := http.Get(url)
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				results <- result{code: resp.StatusCode, err: err}
				return
			}
			r := result{code: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				tr, err := trace.ReadCSV(bytes.NewReader(b))
				if err != nil {
					results <- result{code: resp.StatusCode, err: err}
					return
				}
				r.n = tr.Len()
			}
			results <- r
		}(i)
	}

	// SIGTERM while the requests are in flight.
	time.Sleep(20 * time.Millisecond)
	cancel()

	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request %d dropped during drain: %v", i, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("request %d status = %d during drain, want 200", i, r.code)
		}
		if r.n != 5000 {
			t.Fatalf("request %d body truncated: %d of 5000 requests", i, r.n)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	// New connections are refused after the drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// regimeTrace builds a hand-crafted single-class trace whose storage spans
// walk the given LBN regions in a cycle, under the 8-region / 8000-block
// quantization of the drift tests.
func regimeTrace(n int, regions []int, startID int64) *trace.Trace {
	const blocksPerRegion = 1000
	tr := &trace.Trace{}
	at := float64(startID) * 0.01
	ri := 0
	for i := 0; i < n; i++ {
		req := trace.Request{
			ID:      startID + int64(i),
			Class:   "read64K",
			Arrival: at,
			Spans: []trace.Span{
				{Subsystem: trace.Network, Start: at, Duration: 0.001, Op: trace.OpRead, Bytes: 64 << 10},
				{Subsystem: trace.CPU, Start: at + 0.001, Duration: 0.002, Util: 0.5},
				{Subsystem: trace.Memory, Start: at + 0.003, Duration: 0.001, Bytes: 64 << 10, Bank: 1},
			},
		}
		off := at + 0.004
		for k := 0; k < 4; k++ {
			region := regions[ri%len(regions)]
			ri++
			req.Spans = append(req.Spans, trace.Span{
				Subsystem: trace.Storage,
				Start:     off,
				Duration:  0.002,
				Op:        trace.OpRead,
				Bytes:     64 << 10,
				LBN:       int64(region*blocksPerRegion) + int64(i%blocksPerRegion),
			})
			off += 0.002
		}
		tr.Requests = append(tr.Requests, req)
		at += 0.01
	}
	return tr
}

// TestDriftRetrainConvergence streams a distribution-shifted window and
// asserts (a) the chi-square trigger retrains on the shift and only on the
// shift, and (b) once the old regime is evicted the served storage chain
// has converged to the new regime.
func TestDriftRetrainConvergence(t *testing.T) {
	cfg := quietConfig()
	cfg.Window = 256
	cfg.RetrainMin = 32
	cfg.DriftP = 0.01
	cfg.DriftMinTransitions = 64
	cfg.StorageRegions = 8
	cfg.DiskBlocks = 8000
	s := newTestServer(t, cfg)

	regimeA := []int{0, 1, 2}
	regimeB := []int{5, 6, 7}

	// Cold start on regime A.
	retrained, reason, err := s.Ingest(regimeTrace(128, regimeA, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !retrained || reason != ReasonCold {
		t.Fatalf("first batch: retrained=%v reason=%q, want cold", retrained, reason)
	}

	// More of the same regime: the drift test must stay quiet.
	retrained, reason, err = s.Ingest(regimeTrace(64, regimeA, 128))
	if err != nil {
		t.Fatal(err)
	}
	if retrained {
		t.Fatalf("in-distribution batch retrained (reason %q)", reason)
	}

	// Distribution shift: same class, storage walks disjoint regions.
	retrained, reason, err = s.Ingest(regimeTrace(64, regimeB, 192))
	if err != nil {
		t.Fatal(err)
	}
	if !retrained || reason != ReasonDrift {
		t.Fatalf("shifted batch: retrained=%v reason=%q, want drift", retrained, reason)
	}

	// Keep streaming regime B until regime A is fully evicted from the
	// 256-request window, then pin a final retrain and check convergence.
	for i := 0; i < 4; i++ {
		if _, _, err := s.Ingest(regimeTrace(64, regimeB, 256+int64(i)*64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	ms := s.model.Load()
	if ms == nil || ms.RefStorage == nil {
		t.Fatal("no served storage reference after convergence retrains")
	}
	pi, err := ms.RefStorage.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	var newMass, oldMass float64
	for _, r := range regimeB {
		newMass += pi[r]
	}
	for _, r := range regimeA {
		oldMass += pi[r]
	}
	if newMass < 0.95 {
		t.Fatalf("stationary mass on new regime = %.3f, want >= 0.95 (pi=%v)", newMass, pi)
	}
	if oldMass > 0.03 {
		t.Fatalf("stationary mass on old regime = %.3f, want <= 0.03 (pi=%v)", oldMass, pi)
	}

	// The synthesized workload follows the chain: storage spans land in the
	// new regime.
	synth, err := ms.Kooza.Synthesize(500, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	inNew, total := 0, 0
	for _, r := range synth.Requests {
		for _, sp := range r.Spans {
			if sp.Subsystem != trace.Storage {
				continue
			}
			total++
			region := int(sp.LBN / 1000)
			if region >= 5 {
				inNew++
			}
		}
	}
	if total == 0 {
		t.Fatal("synthesized trace has no storage spans")
	}
	if frac := float64(inNew) / float64(total); frac < 0.9 {
		t.Fatalf("synthesized storage spans in new regime = %.2f, want >= 0.9", frac)
	}

	// The drift retrain was counted.
	var buf bytes.Buffer
	s.metrics.reg.WriteText(&buf)
	if !strings.Contains(buf.String(), "dcmodeld_retrain_drift_total 1") {
		t.Error("metrics missing the drift retrain count")
	}
}

// TestIngestRejectsMalformed confirms a defective stream is a 400 that
// still reports what was ingested before the defect.
func TestIngestRejectsMalformed(t *testing.T) {
	cfg := quietConfig()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := traceCSV(t, gfsTrace(t, 10, 1))
	body := append(append([]byte{}, good...), []byte("not,a,valid,row\n")...)
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Ingested int    `json:"ingested"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest status = %d, want 400", resp.StatusCode)
	}
	if ing.Error == "" {
		t.Fatal("malformed ingest reported no error")
	}
	if ing.Ingested == 0 {
		t.Fatal("rows decoded before the defect were discarded")
	}
}

// TestConfigValidation pins the constructor's rejection surface.
func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.DriftP = 1.5
	if _, err := New(bad); err == nil {
		t.Error("DriftP > 1 accepted")
	}
	bad = DefaultConfig()
	bad.Window = 2
	if _, err := New(bad); err == nil {
		t.Error("window of 2 accepted")
	}
}
