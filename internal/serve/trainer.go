package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/markov"
	"dcmodel/internal/obs"
	"dcmodel/internal/trace"
)

// minTrainRequests is the hard floor below which no trainer can fit an
// arrival process.
const minTrainRequests = 3

// driftMinRowCount is the per-row observation floor of the chi-square
// drift test (the classic >= 5 expected-per-cell rule applied to rows).
const driftMinRowCount = 5

// Retrain reasons, reported in ingest responses and counted in /metrics.
const (
	ReasonCold  = "cold"  // no model served yet
	ReasonDrift = "drift" // chi-square drift trigger fired
	ReasonStale = "stale" // staleness bound exceeded with fresh data
	ReasonForce = "force" // explicit Retrain() call
)

// maybeRetrainLocked runs the online-training decision. Callers hold
// ingestMu. It returns whether a retrain happened and why. span is the
// caller's sampled trace span (nil outside a sampled request — the poll
// loop and programmatic callers pass nil, which also keeps sampled trace
// shapes deterministic for a fixed request sequence).
func (s *Server) maybeRetrainLocked(span *obs.LiveSpan) (bool, string, error) {
	n, _, total, _ := s.win.stats()
	if n < minTrainRequests {
		return false, "", nil
	}
	if time.Now().Before(s.breakerUntil) {
		// Breaker open: a run of failed retrains (e.g. a poisoned window)
		// must not wedge the poll loop into retraining — and failing —
		// once a second. The last good generation keeps serving; the
		// first trigger past the cooldown is the half-open probe.
		return false, "", nil
	}
	ms := s.model.Load()
	if ms == nil {
		// Cold start: become warm at the first trainable window rather
		// than waiting out RetrainMin.
		return s.retrainLocked(ReasonCold, span)
	}
	newSince := total - ms.TotalAt
	if newSince < int64(s.cfg.RetrainMin) {
		return false, "", nil
	}
	// Drift trigger: compare the transitions observed since the last
	// retrain against the served pooled storage chain.
	if ms.RefStorage != nil && s.drift.Transitions() >= s.cfg.DriftMinTransitions {
		res, err := markov.Drift(ms.RefStorage, s.drift, driftMinRowCount)
		if err == nil {
			s.metrics.setDrift(res.Statistic, res.P)
			if res.P < s.cfg.DriftP {
				s.metrics.driftRetrains.Add(1)
				span.Annotate("drift: stat=%g p=%g", res.Statistic, res.P)
				ok, reason, err := s.retrainLocked(ReasonDrift, span)
				if ok {
					// Closed loop: the workload changed enough to swap the
					// model, so the provisioning answer may have too.
					s.maybeAutoProvision()
				}
				return ok, reason, err
			}
		}
	}
	// Staleness trigger: enough fresh data and an old model.
	if time.Since(ms.TrainedAt) >= s.cfg.RetrainInterval {
		s.metrics.staleRetrains.Add(1)
		return s.retrainLocked(ReasonStale, span)
	}
	return false, "", nil
}

// Retrain forces a retrain from the current window regardless of drift,
// staleness or an open circuit breaker (the manual probe path).
func (s *Server) Retrain() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	_, _, err := s.retrainLocked(ReasonForce, nil)
	return err
}

// BreakerOpen reports whether the retrain circuit breaker is currently
// suppressing automatic retrains, and until when.
func (s *Server) BreakerOpen() (bool, time.Time) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	until := s.breakerUntil
	return time.Now().Before(until), until
}

// retrainLocked trains a fresh model generation from the window snapshot
// and swaps it in. On failure the previous generation keeps serving and
// the failure counts toward the circuit breaker. Callers hold ingestMu.
func (s *Server) retrainLocked(reason string, span *obs.LiveSpan) (bool, string, error) {
	trainSpan := span.Child("train:" + reason)
	defer trainSpan.End()
	snap := s.win.snapshot()
	fail := func(err error) (bool, string, error) {
		s.metrics.retrainErrors.Add(1)
		s.retrainFails++
		if s.retrainFails >= s.cfg.BreakerThreshold {
			s.breakerUntil = time.Now().Add(s.cfg.BreakerCooldown)
			s.retrainFails = 0
			s.metrics.breakerTrips.Add(1)
		}
		return false, reason, fmt.Errorf("serve: retrain (%s): %w", reason, err)
	}
	stop := s.stage(trainSpan, "train.kooza")
	kz, err := kooza.Train(snap, kooza.Options{
		StorageRegions: s.cfg.StorageRegions,
		DiskBlocks:     s.cfg.DiskBlocks,
		Smoothing:      s.cfg.Smoothing,
	})
	stop()
	if err != nil {
		return fail(err)
	}
	stop = s.stage(trainSpan, "train.inbreadth")
	ib, err := inbreadth.Train(snap, inbreadth.Options{
		StorageRegions: s.cfg.StorageRegions,
		DiskBlocks:     s.cfg.DiskBlocks,
		Smoothing:      s.cfg.Smoothing,
	})
	stop()
	if err != nil {
		return fail(err)
	}
	stop = s.stage(trainSpan, "train.indepth")
	id, err := indepth.Train(snap)
	stop()
	if err != nil {
		return fail(err)
	}
	stop = s.stage(trainSpan, "train.ref")
	ref, err := s.pooledStorageChain(snap)
	stop()
	if err != nil {
		return fail(err)
	}
	// The refreeze hook: trained chains arrive frozen, but freezing again
	// here guarantees the invariant for model generations assembled any
	// other way (e.g. loaded from disk in a future snapshot-restore path).
	stop = s.stage(trainSpan, "refreeze")
	kz.Refreeze()
	stop()
	_, _, total, _ := s.win.stats()
	s.model.Store(&modelSet{
		Kooza:      kz,
		InBreadth:  ib,
		InDepth:    id,
		RefStorage: ref,
		TrainedAt:  time.Now(),
		TrainedOn:  snap.Len(),
		TotalAt:    total,
	})
	// Fresh drift window against the fresh reference; a success closes
	// the breaker.
	s.drift.Reset()
	s.retrainFails = 0
	s.breakerUntil = time.Time{}
	s.metrics.retrains.Add(1)
	s.metrics.modelTrainedOn.Set(float64(snap.Len()))
	return true, reason, nil
}

// pooledStorageChain trains the class-blind storage-region chain the
// drift test uses as its reference, with the same fixed quantization the
// ingest path applies.
func (s *Server) pooledStorageChain(tr *trace.Trace) (*markov.Chain, error) {
	acc, err := markov.NewAccumulator(s.cfg.StorageRegions, s.cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	seq := make([]int, 0, 8)
	for _, r := range tr.Requests {
		seq = seq[:0]
		for _, sp := range r.Spans {
			if sp.Subsystem == trace.Storage {
				seq = append(seq, s.regionOf(sp.LBN))
			}
		}
		if len(seq) > 0 {
			if err := acc.Observe(seq); err != nil {
				return nil, err
			}
		}
	}
	ch, err := acc.Chain()
	if err == markov.ErrNoData {
		// A window without storage spans cannot drift on storage; serve
		// without a reference (drift trigger stays quiet).
		return nil, nil
	}
	return ch, err
}

// Serve runs the daemon's HTTP server on ln until ctx is cancelled (the
// SIGTERM path of cmd/dcmodeld), then drains gracefully: the listener
// stops accepting, every in-flight request finishes, and the work queue
// is run dry before Serve returns. Returns the first serve error, or nil
// after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	select {
	case err, ok := <-errc:
		if ok && err != nil {
			s.Close()
			return err
		}
		s.Close()
		return nil
	case <-ctx.Done():
	}
	// Graceful drain: in-flight HTTP requests first, then the queue.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*s.cfg.RequestTimeout)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	s.Close()
	return err
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
