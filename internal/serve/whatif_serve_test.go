package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/obs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// whatifTrace is a gentler GFS workload than gfsTrace (40 req/s instead of
// 200): the simulated cluster reports every request on one server, so the
// compiled twin is single-server and the trained operating point must sit
// well inside the stable region to leave headroom for load-scaling queries.
func whatifTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	cluster, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cluster.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 40},
		Requests: n,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// postWhatIf sends one what-if query and returns the raw response.
func postWhatIf(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestWhatIfEndpoint covers the request contract of POST /v1/whatif: cold
// and bad inputs are rejected with the right statuses, and a warm daemon
// answers every model's twin with a solved steady state.
func TestWhatIfEndpoint(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold daemon: 503, like the other query endpoints.
	resp, _ := postWhatIf(t, ts, `{"query":{"load_factor":2}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold whatif status = %d, want 503", resp.StatusCode)
	}

	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}

	// GET is not allowed; the query rides the POST body.
	getResp, err := http.Get(ts.URL + "/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET whatif status = %d, want 405", getResp.StatusCode)
	}

	for _, bad := range []string{
		`{`,                            // malformed JSON
		`{"model":"mystery"}`,          // unknown model
		`{"unknown_field":1}`,          // unknown field
		`{"query":{"load_factor":-2}}`, // invalid query parameter
	} {
		resp, body := postWhatIf(t, ts, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("whatif %s status = %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}

	for _, model := range []string{"kooza", "inbreadth", "indepth"} {
		resp, body := postWhatIf(t, ts, `{"model":"`+model+`","query":{"load_factor":2}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s whatif status = %d (%s), want 200", model, resp.StatusCode, body)
		}
		var out struct {
			Model     string `json:"model"`
			TrainedOn int    `json:"trained_on"`
			Answer    struct {
				Solver              string  `json:"solver"`
				Stable              bool    `json:"stable"`
				MeanResponseSeconds float64 `json:"mean_response_seconds"`
				Bottleneck          string  `json:"bottleneck"`
			} `json:"answer"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s whatif decode: %v\n%s", model, err, body)
		}
		if out.Model != model || out.TrainedOn != 400 {
			t.Errorf("%s whatif echo = %+v", model, out)
		}
		if !out.Answer.Stable || out.Answer.MeanResponseSeconds <= 0 || out.Answer.Solver == "" {
			t.Errorf("%s whatif answer degenerate: %+v", model, out.Answer)
		}
	}

	// The default model is kooza and saturation is reported in-band.
	resp, body := postWhatIf(t, ts, `{"query":{"load_factor":1e9}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated whatif status = %d (%s), want 200 with stable=false", resp.StatusCode, body)
	}
	var sat struct {
		Model  string `json:"model"`
		Answer struct {
			Stable bool `json:"stable"`
		} `json:"answer"`
	}
	if err := json.Unmarshal(body, &sat); err != nil {
		t.Fatal(err)
	}
	if sat.Model != "kooza" || sat.Answer.Stable {
		t.Errorf("saturated whatif = %+v, want default kooza model, stable=false", sat)
	}
}

// TestWhatIfByteStable pins the wire determinism contract: the same query
// against the same warm generation returns byte-identical responses, every
// time, for every model — the twin is pure float arithmetic with no RNG.
func TestWhatIfByteStable(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`{"query":{}}`,
		`{"query":{"load_factor":2}}`,
		`{"model":"inbreadth","query":{"rate_per_sec":120}}`,
		`{"model":"indepth","query":{"users":4,"think_seconds":0.01}}`,
		`{"query":{"slo":{"quantile":0.95,"target_seconds":0.05}}}`,
	}
	for _, q := range queries {
		var first []byte
		for i := 0; i < 5; i++ {
			resp, body := postWhatIf(t, ts, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("whatif %s status = %d (%s)", q, resp.StatusCode, body)
			}
			if i == 0 {
				first = body
				continue
			}
			if !bytes.Equal(body, first) {
				t.Fatalf("whatif %s response drifted between calls:\n%s\nvs\n%s", q, first, body)
			}
		}
	}
}

// TestWhatIfClosedForm asserts the fast-path claim with the daemon's own
// stage metrics: answering what-if queries runs the twin compile and solve
// stages but never a discrete-event replay, and it bypasses the bounded
// work queue entirely (no queue.wait stage).
func TestWhatIfClosedForm(t *testing.T) {
	cfg := quietConfig()
	o := obs.DefaultOptions()
	cfg.Obs = &o
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, _, err := s.Ingest(whatifTrace(t, 400)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, body := postWhatIf(t, ts, `{"query":{"load_factor":3}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("whatif status = %d (%s)", resp.StatusCode, body)
		}
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mb)
	for _, want := range []string{`stage="whatif.compile"`, `stage="whatif.solve"`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s after whatif queries", want)
		}
	}
	for _, wantAbsent := range []string{`stage="replay"`, `stage="queue.wait"`} {
		if strings.Contains(metrics, wantAbsent) {
			t.Errorf("metrics report %s — whatif must not touch the simulator or the work queue", wantAbsent)
		}
	}
}
