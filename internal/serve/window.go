package serve

import (
	"sync"

	"dcmodel/internal/trace"
)

// window is the bounded ingestion buffer the warm models are trained from:
// a ring of the most recently ingested requests, with per-subsystem span
// counts tracked incrementally so the /metrics occupancy gauges never have
// to walk the buffer. Ingested requests are renumbered with a monotonic ID
// so requests arriving from independent client streams never collide (the
// trainers require unique IDs).
type window struct {
	mu     sync.Mutex
	buf    []trace.Request // ring storage, len == capacity
	head   int             // next write position
	n      int             // filled entries
	nextID int64           // monotonic ID assigned at ingest
	total  int64           // requests ever ingested
	spans  [4]int64        // spans currently in the window, per subsystem
}

func newWindow(capacity int) *window {
	return &window{buf: make([]trace.Request, capacity)}
}

// add folds one request into the window, evicting the oldest when full,
// and returns the ID it was assigned.
func (w *window) add(r trace.Request) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	r.ID = w.nextID
	w.nextID++
	w.total++
	if w.n == len(w.buf) {
		for _, s := range w.buf[w.head].Spans {
			w.spans[spanBucket(s.Subsystem)]--
		}
	} else {
		w.n++
	}
	for _, s := range r.Spans {
		w.spans[spanBucket(s.Subsystem)]++
	}
	w.buf[w.head] = r
	w.head = (w.head + 1) % len(w.buf)
	return r.ID
}

// spanBucket clamps a subsystem into the four counted buckets (defensive:
// decoded input is already validated, but the window must not index out of
// range on any request it is handed).
func spanBucket(s trace.Subsystem) int {
	if s < 0 || s > 3 {
		return 0
	}
	return int(s)
}

// snapshot copies the window contents, oldest first, as a standalone
// trace. Span slices are shared with the ring (the trainers treat traces
// as read-only); request values are copied.
func (w *window) snapshot() *trace.Trace {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := &trace.Trace{Requests: make([]trace.Request, 0, w.n)}
	start := 0
	if w.n == len(w.buf) {
		start = w.head
	}
	for i := 0; i < w.n; i++ {
		out.Requests = append(out.Requests, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// stats returns the occupancy gauges: filled entries, capacity, total ever
// ingested, and per-subsystem span counts.
func (w *window) stats() (n, capacity int, total int64, spans [4]int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n, len(w.buf), w.total, w.spans
}
