package serve

import (
	"testing"

	"dcmodel/internal/trace"
)

// windowReq builds a request with a recognizable class and one span per
// listed subsystem.
func windowReq(class string, subs ...trace.Subsystem) trace.Request {
	r := trace.Request{Class: class}
	for _, s := range subs {
		r.Spans = append(r.Spans, trace.Span{Subsystem: s, Duration: 0.001})
	}
	return r
}

// TestWindowEvictionBoundary pins the behavior at exactly cap: filling a
// window to capacity evicts nothing, and the very next add evicts exactly
// the oldest request.
func TestWindowEvictionBoundary(t *testing.T) {
	const cap = 4
	w := newWindow(cap)

	// Fill to exactly cap: every request must be retained.
	for i := 0; i < cap; i++ {
		w.add(windowReq("r", trace.CPU))
	}
	n, c, total, spans := w.stats()
	if n != cap || c != cap || total != cap {
		t.Fatalf("at cap: n=%d capacity=%d total=%d, want %d/%d/%d", n, c, total, cap, cap, cap)
	}
	if spans[trace.CPU] != cap {
		t.Fatalf("at cap: cpu spans = %d, want %d", spans[trace.CPU], cap)
	}
	snap := w.snapshot()
	if snap.Len() != cap {
		t.Fatalf("at cap: snapshot holds %d requests, want %d", snap.Len(), cap)
	}
	for i, r := range snap.Requests {
		if r.ID != int64(i) {
			t.Fatalf("at cap: snapshot[%d].ID = %d, want %d (oldest first)", i, r.ID, i)
		}
	}

	// One past cap: exactly the oldest request (ID 0) is evicted, its
	// spans leave the counters, and occupancy stays pinned at cap.
	w.add(windowReq("r", trace.Storage, trace.Storage))
	n, _, total, spans = w.stats()
	if n != cap {
		t.Fatalf("past cap: n = %d, want %d", n, cap)
	}
	if total != cap+1 {
		t.Fatalf("past cap: total = %d, want %d", total, cap+1)
	}
	if spans[trace.CPU] != cap-1 {
		t.Fatalf("past cap: cpu spans = %d, want %d (one evicted)", spans[trace.CPU], cap-1)
	}
	if spans[trace.Storage] != 2 {
		t.Fatalf("past cap: storage spans = %d, want 2", spans[trace.Storage])
	}
	snap = w.snapshot()
	if snap.Len() != cap {
		t.Fatalf("past cap: snapshot holds %d requests, want %d", snap.Len(), cap)
	}
	for i, r := range snap.Requests {
		if r.ID != int64(i+1) {
			t.Fatalf("past cap: snapshot[%d].ID = %d, want %d (ID 0 evicted)", i, r.ID, i+1)
		}
	}
}

// TestWindowIDsMonotonicAcrossEviction pins that renumbering never
// reuses an ID even after the ring wraps many times.
func TestWindowIDsMonotonicAcrossEviction(t *testing.T) {
	w := newWindow(3)
	var last int64 = -1
	for i := 0; i < 10; i++ {
		id := w.add(windowReq("r", trace.Network))
		if id != last+1 {
			t.Fatalf("add %d assigned ID %d, want %d", i, id, last+1)
		}
		last = id
	}
	snap := w.snapshot()
	want := []int64{7, 8, 9}
	for i, r := range snap.Requests {
		if r.ID != want[i] {
			t.Fatalf("after wrap: snapshot[%d].ID = %d, want %d", i, r.ID, want[i])
		}
	}
}
