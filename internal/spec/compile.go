package spec

import (
	"fmt"
	"sort"

	"dcmodel/internal/fault"
	"dcmodel/internal/gfs"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// BuildArrivals constructs the workload arrival process an ArrivalSpec
// declares. Process-specific overrides start from the canonical defaults
// in internal/workload (DefaultMMPP, DefaultSelfSimilar), so a spec that
// sets only {process, rate} means the same thing everywhere in the
// toolkit.
func BuildArrivals(a ArrivalSpec) (workload.Arrivals, error) {
	switch a.Process {
	case "poisson":
		if a.Rate <= 0 {
			return nil, pathErr("rate", "poisson needs rate > 0, got %g", a.Rate)
		}
		return workload.Poisson{Rate: a.Rate}, nil

	case "deterministic":
		interval := a.Interval
		if interval == 0 && a.Rate > 0 {
			interval = 1 / a.Rate
		}
		if interval <= 0 {
			return nil, pathErr("rate", "deterministic needs rate > 0 or interval > 0")
		}
		return workload.Deterministic{Interval: interval}, nil

	case "mmpp":
		if a.Rate <= 0 && len(a.Rates) == 0 {
			return nil, pathErr("rate", "mmpp needs rate > 0 (or explicit rates), got %g", a.Rate)
		}
		m := workload.DefaultMMPP(a.Rate)
		if len(a.Rates) > 0 {
			if len(a.Rates) != 2 {
				return nil, pathErr("rates", "mmpp needs exactly 2 state rates, got %d", len(a.Rates))
			}
			m.Rate = [2]float64{a.Rates[0], a.Rates[1]}
		}
		if len(a.Holds) > 0 {
			if len(a.Holds) != 2 {
				return nil, pathErr("holds", "mmpp needs exactly 2 holding times, got %d", len(a.Holds))
			}
			m.Hold = [2]float64{a.Holds[0], a.Holds[1]}
		}
		if err := m.Validate(); err != nil {
			return nil, pathErr("", "%v", err)
		}
		return m, nil

	case "selfsimilar":
		if a.Rate <= 0 && a.OnRate <= 0 {
			return nil, pathErr("rate", "selfsimilar needs rate > 0 (or explicit on_rate), got %g", a.Rate)
		}
		s := workload.DefaultSelfSimilar(a.Rate)
		if a.Sources != 0 {
			s.Sources = a.Sources
		}
		if a.OnRate != 0 {
			s.OnRate = a.OnRate
		}
		if a.MeanOn != 0 {
			s.MeanOn = a.MeanOn
		}
		if a.MeanOff != 0 {
			s.MeanOff = a.MeanOff
		}
		if a.Alpha != 0 {
			s.Alpha = a.Alpha
		}
		if err := s.Validate(); err != nil {
			return nil, pathErr("", "%v", err)
		}
		return s, nil

	case "":
		return nil, pathErr("process", "arrival process is required (poisson, mmpp, selfsimilar, deterministic)")
	default:
		return nil, pathErr("process", "unknown arrival process %q (valid: poisson, mmpp, selfsimilar, deterministic)", a.Process)
	}
}

// BuildDist constructs the size distribution a DistSpec declares.
func BuildDist(d DistSpec) (stats.Dist, error) {
	switch d.Dist {
	case "fixed":
		if d.Value < 1 {
			return nil, pathErr("value", "fixed needs value >= 1 byte, got %g", d.Value)
		}
		return stats.Deterministic{Value: d.Value}, nil
	case "lognormal":
		if d.Sigma <= 0 {
			return nil, pathErr("sigma", "lognormal needs sigma > 0, got %g", d.Sigma)
		}
		return stats.LogNormal{Mu: d.Mu, Sigma: d.Sigma}, nil
	case "pareto":
		if d.Xm <= 0 {
			return nil, pathErr("xm", "pareto needs xm > 0, got %g", d.Xm)
		}
		if d.Alpha <= 1 {
			return nil, pathErr("alpha", "pareto needs alpha > 1 for a finite mean, got %g", d.Alpha)
		}
		return stats.Pareto{Xm: d.Xm, Alpha: d.Alpha}, nil
	case "exponential":
		if d.Mean <= 0 {
			return nil, pathErr("mean", "exponential needs mean > 0, got %g", d.Mean)
		}
		return stats.Exponential{Rate: 1 / d.Mean}, nil
	case "uniform":
		if d.A < 0 || d.B <= d.A {
			return nil, pathErr("a", "uniform needs 0 <= a < b, got [%g, %g]", d.A, d.B)
		}
		return stats.Uniform{A: d.A, B: d.B}, nil
	case "weibull":
		if d.Shape <= 0 || d.Scale <= 0 {
			return nil, pathErr("shape", "weibull needs shape > 0 and scale > 0, got k=%g lambda=%g", d.Shape, d.Scale)
		}
		return stats.Weibull{K: d.Shape, Lambda: d.Scale}, nil
	case "":
		return nil, pathErr("dist", "size distribution is required (fixed, lognormal, pareto, exponential, uniform, weibull)")
	default:
		return nil, pathErr("dist", "unknown distribution %q (valid: fixed, lognormal, pareto, exponential, uniform, weibull)", d.Dist)
	}
}

// Options tune compilation without editing the spec document. Zero values
// defer to the spec.
type Options struct {
	// Requests overrides Spec.Requests when > 0.
	Requests int
	// Seed overrides Spec.Seed when > 0.
	Seed int64
	// Faults, when non-nil, arms fault injection on every client's run.
	Faults *fault.Config
}

// CompiledClient is one client resolved to concrete workload machinery.
type CompiledClient struct {
	// Name and SLO are copied from the spec.
	Name string
	SLO  SLO
	// Weight is the effective weight (0 in the spec means 1).
	Weight float64
	// Requests is the client's share of the total.
	Requests int
	// Arrivals is the client's arrival process with any phase schedule
	// already applied.
	Arrivals workload.Arrivals
	// Mix is the client's request-class mix; class names are
	// "<client>/<class>".
	Mix *workload.Mix
}

// Compiled is a spec resolved against internal/workload and internal/gfs:
// ready to Generate.
type Compiled struct {
	// Spec is the source document.
	Spec *Spec
	// Name, Seed and Requests are the effective values after Options.
	Name     string
	Seed     int64
	Requests int
	// Cluster is the resolved simulated-cluster configuration (per client
	// partition).
	Cluster gfs.Config
	// Faults is the armed fault-injection config, if any.
	Faults *fault.Config
	// Clients hold each client's generation machinery, in spec order.
	Clients []CompiledClient
}

// Compile validates the spec and resolves it into generation machinery.
func (s *Spec) Compile(opts Options) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		Spec:     s,
		Name:     s.Name,
		Seed:     s.Seed,
		Requests: s.Requests,
		Cluster:  s.clusterConfig(),
		Faults:   opts.Faults,
	}
	if opts.Requests > 0 {
		c.Requests = opts.Requests
	}
	if opts.Seed > 0 {
		c.Seed = opts.Seed
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Requests < len(s.Clients) {
		return nil, pathErr("requests", "%d requests cannot cover %d clients", c.Requests, len(s.Clients))
	}

	weights := make([]float64, len(s.Clients))
	for i, cl := range s.Clients {
		weights[i] = cl.Weight
		if weights[i] == 0 {
			weights[i] = 1
		}
	}
	quotas := clientQuota(c.Requests, weights)

	for i, cl := range s.Clients {
		arr, err := BuildArrivals(cl.Arrivals)
		if err != nil {
			return nil, prefixPath(err, fmt.Sprintf("clients[%d].arrivals", i))
		}
		phases, cycle := s.Phases, s.Cycle
		if len(cl.Phases) > 0 {
			phases, cycle = cl.Phases, cl.Cycle
		}
		arr = Phased(arr, phases, cycle)

		classes := make([]workload.ClassSpec, len(cl.Mix))
		for j, mc := range cl.Mix {
			size, err := BuildDist(mc.Size)
			if err != nil {
				return nil, prefixPath(err, fmt.Sprintf("clients[%d].mix[%d].size", i, j))
			}
			op := trace.OpRead
			if mc.Op == "write" {
				op = trace.OpWrite
			}
			classes[j] = workload.ClassSpec{
				Name:           cl.Name + "/" + mc.Name,
				Weight:         mc.Weight,
				Op:             op,
				Size:           size,
				SequentialProb: mc.Sequential,
			}
		}
		mix, err := workload.NewMix(classes)
		if err != nil {
			return nil, prefixPath(err, fmt.Sprintf("clients[%d].mix", i))
		}

		slo := cl.SLO
		if slo == "" {
			slo = SLOBestEffort
		}
		c.Clients = append(c.Clients, CompiledClient{
			Name:     cl.Name,
			SLO:      slo,
			Weight:   weights[i],
			Requests: quotas[i],
			Arrivals: arr,
			Mix:      mix,
		})
	}
	return c, nil
}

// clusterConfig resolves the spec's cluster overrides onto
// gfs.DefaultConfig.
func (s *Spec) clusterConfig() gfs.Config {
	cfg := gfs.DefaultConfig()
	c := s.Cluster
	if c == nil {
		return cfg
	}
	if c.Chunkservers > 0 {
		cfg.Chunkservers = c.Chunkservers
	}
	if c.Files > 0 {
		cfg.Files = c.Files
	}
	if c.Replication > 0 {
		cfg.Replication = c.Replication
	}
	if c.PopularitySkew > 0 {
		cfg.PopularitySkew = c.PopularitySkew
	}
	if c.SegmentBytes > 0 {
		cfg.SegmentBytes = c.SegmentBytes
	}
	if c.SegmentSkew > 0 {
		cfg.SegmentSkew = c.SegmentSkew
	}
	if c.CacheHitProb > 0 {
		cfg.CacheHitProb = c.CacheHitProb
	}
	return cfg
}

// clientQuota apportions total requests across clients proportionally to
// weight using the largest-remainder method, then enforces a minimum of
// one request per client. Deterministic: remainder ties break toward the
// lower index, and the min-1 floor steals from the current maximum.
func clientQuota(total int, weights []float64) []int {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for i, w := range weights {
		ideal := float64(total) * w / sum
		out[i] = int(ideal)
		rem[i] = ideal - float64(out[i])
		assigned += out[i]
	}
	// Distribute the leftover by descending fractional part, lower index
	// first on ties.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < total; k++ {
		out[order[k%n]]++
		assigned++
	}
	// Min-1 floor: every client generates at least one request.
	for i := range out {
		for out[i] < 1 {
			maxIdx := 0
			for j := range out {
				if out[j] > out[maxIdx] {
					maxIdx = j
				}
			}
			if out[maxIdx] <= 1 {
				break // total < n; caller rejects this earlier
			}
			out[maxIdx]--
			out[i]++
		}
	}
	return out
}
