package spec

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dcmodel/internal/workload"
)

func TestSpecBuildArrivals(t *testing.T) {
	cases := []struct {
		name string
		in   ArrivalSpec
		want workload.Arrivals
	}{
		{"poisson", ArrivalSpec{Process: "poisson", Rate: 20}, workload.Poisson{Rate: 20}},
		{"deterministic rate", ArrivalSpec{Process: "deterministic", Rate: 50}, workload.Deterministic{Interval: 0.02}},
		{"deterministic interval", ArrivalSpec{Process: "deterministic", Interval: 0.5}, workload.Deterministic{Interval: 0.5}},
		{"mmpp defaults", ArrivalSpec{Process: "mmpp", Rate: 20}, workload.DefaultMMPP(20)},
		{"mmpp overrides", ArrivalSpec{Process: "mmpp", Rate: 20, Rates: []float64{150, 10}, Holds: []float64{2, 6}},
			workload.MMPP2{Rate: [2]float64{150, 10}, Hold: [2]float64{2, 6}}},
		{"selfsimilar defaults", ArrivalSpec{Process: "selfsimilar", Rate: 90}, workload.DefaultSelfSimilar(90)},
		{"selfsimilar overrides", ArrivalSpec{Process: "selfsimilar", Rate: 90, Sources: 8, Alpha: 1.6},
			workload.SelfSimilar{Sources: 8, OnRate: 90.0 / 4, MeanOn: 1, MeanOff: 3, Alpha: 1.6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := BuildArrivals(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("got %#v, want %#v", got, tc.want)
			}
		})
	}

	bad := []struct {
		name     string
		in       ArrivalSpec
		wantPath string
	}{
		{"no process", ArrivalSpec{Rate: 5}, "process"},
		{"unknown process", ArrivalSpec{Process: "weibull", Rate: 5}, "process"},
		{"poisson no rate", ArrivalSpec{Process: "poisson"}, "rate"},
		{"mmpp one rate", ArrivalSpec{Process: "mmpp", Rate: 5, Rates: []float64{1}}, "rates"},
		{"mmpp bad holds", ArrivalSpec{Process: "mmpp", Rate: 5, Holds: []float64{1, -2}}, ""},
		{"selfsimilar bad alpha", ArrivalSpec{Process: "selfsimilar", Rate: 5, Alpha: 5}, ""},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildArrivals(tc.in)
			if err == nil {
				t.Fatalf("accepted %+v", tc.in)
			}
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("want *Error, got %T", err)
			}
			if tc.wantPath != "" && e.Path != tc.wantPath {
				t.Errorf("error path %q, want %q", e.Path, tc.wantPath)
			}
		})
	}
}

func TestSpecBuildDist(t *testing.T) {
	ok := []DistSpec{
		{Dist: "fixed", Value: 4096},
		{Dist: "lognormal", Mu: 9.5, Sigma: 1.2},
		{Dist: "pareto", Xm: 4096, Alpha: 1.3},
		{Dist: "exponential", Mean: 8192},
		{Dist: "uniform", A: 0, B: 65536},
		{Dist: "weibull", Shape: 1.5, Scale: 8192},
	}
	for _, d := range ok {
		if _, err := BuildDist(d); err != nil {
			t.Errorf("BuildDist(%+v): %v", d, err)
		}
	}
	bad := []DistSpec{
		{},
		{Dist: "zipf"},
		{Dist: "fixed", Value: 0},
		{Dist: "lognormal", Mu: 9.5},
		{Dist: "pareto", Xm: 4096, Alpha: 1},
		{Dist: "exponential"},
		{Dist: "uniform", A: 5, B: 5},
		{Dist: "weibull", Shape: 1.5},
	}
	for _, d := range bad {
		if _, err := BuildDist(d); err == nil {
			t.Errorf("BuildDist(%+v) accepted invalid spec", d)
		}
	}
}

func TestSpecValidatePaths(t *testing.T) {
	s := &Spec{
		Requests: 0,
		Phases:   []PhaseSpec{{Duration: -1, RateScale: 0}},
		Clients: []ClientSpec{
			{
				Name:     "a",
				SLO:      "gold",
				Arrivals: ArrivalSpec{Process: "poisson"},
				Mix: []ClassSpec{
					{Name: "", Weight: 0, Op: "scan", Size: DistSpec{Dist: "nope"}, Sequential: 2},
				},
			},
			{Name: "a", Arrivals: ArrivalSpec{Process: "poisson", Rate: 1}, Mix: []ClassSpec{{Name: "x", Weight: 1, Op: "read", Size: DistSpec{Dist: "fixed", Value: 1}}}},
		},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted a badly broken spec")
	}
	for _, path := range []string{
		"name", "requests",
		"phases[0].duration", "phases[0].rate_scale",
		"clients[0].slo", "clients[0].arrivals.rate",
		"clients[0].mix[0].name", "clients[0].mix[0].weight",
		"clients[0].mix[0].op", "clients[0].mix[0].size.dist",
		"clients[0].mix[0].sequential",
		"clients[1].name",
	} {
		if !strings.Contains(err.Error(), path) {
			t.Errorf("joined error misses path %q:\n%v", path, err)
		}
	}
}

func TestSpecClientQuota(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{10, []float64{1, 1}, []int{5, 5}},
		{10, []float64{3, 1}, []int{8, 2}},           // 7.5/2.5: equal remainders, lower index wins the leftover
		{7, []float64{1, 1, 1}, []int{3, 2, 2}},      // 2.33 each; first gets the leftover
		{5, []float64{1000, 1, 1, 1}, []int{2, 1, 1, 1}}, // min-1 floor steals from the max
		{3, []float64{1, 1, 1}, []int{1, 1, 1}},
	}
	for _, tc := range cases {
		got := clientQuota(tc.total, tc.weights)
		sum := 0
		for _, q := range got {
			sum += q
		}
		if sum != tc.total {
			t.Errorf("quota(%d, %v) = %v does not sum to total", tc.total, tc.weights, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("quota(%d, %v) = %v, want %v", tc.total, tc.weights, got, tc.want)
				break
			}
		}
	}
}

func TestSpecPhasedMapping(t *testing.T) {
	// Schedule: 10 s at 2x, then 10 s at 0.5x. Operational breakpoints at
	// 20 and 25; real at 10 and 20.
	phases := []PhaseSpec{{Duration: 10, RateScale: 2}, {Duration: 10, RateScale: 0.5}}
	p := Phased(base{}, phases, false).(*phased)
	cases := [][2]float64{
		{0, 0}, {10, 5}, {20, 10}, {22.5, 15}, {25, 20},
		{30, 25}, // past the schedule: nominal rate
	}
	for _, tc := range cases {
		if got := p.realTime(tc[0]); math.Abs(got-tc[1]) > 1e-12 {
			t.Errorf("realTime(%g) = %g, want %g", tc[0], got, tc[1])
		}
	}
	cyc := Phased(base{}, phases, true).(*phased)
	cycCases := [][2]float64{
		{25, 20}, {35, 25}, {45, 30}, {50, 40},
	}
	for _, tc := range cycCases {
		if got := cyc.realTime(tc[0]); math.Abs(got-tc[1]) > 1e-12 {
			t.Errorf("cycled realTime(%g) = %g, want %g", tc[0], got, tc[1])
		}
	}

	// Monotonicity across many points.
	prev := -1.0
	for tau := 0.0; tau < 120; tau += 0.37 {
		got := cyc.realTime(tau)
		if got <= prev {
			t.Fatalf("realTime not strictly increasing at tau=%g", tau)
		}
		prev = got
	}

	// Empty schedule is the identity wrapper.
	if got := Phased(base{}, nil, false); got != (base{}) {
		t.Errorf("empty schedule should return the base process unchanged")
	}
}

// base is a trivial deterministic Arrivals for phase tests.
type base struct{}

func (base) Times(n int, _ *rand.Rand) []float64 { return nil }

func TestSpecCompile(t *testing.T) {
	s, err := Preset("webtier")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 1 || c.Requests != 4000 || len(c.Clients) != 2 {
		t.Errorf("compiled header wrong: seed=%d requests=%d clients=%d", c.Seed, c.Requests, len(c.Clients))
	}
	if c.Cluster.Chunkservers != 4 || c.Cluster.CacheHitProb != 0.5 {
		t.Errorf("cluster overrides not applied: %+v", c.Cluster)
	}
	// 8:1 weights over 4000 -> 3556/444 by largest remainder.
	if c.Clients[0].Requests+c.Clients[1].Requests != 4000 {
		t.Errorf("client quotas do not sum: %d + %d", c.Clients[0].Requests, c.Clients[1].Requests)
	}
	if c.Clients[0].Requests <= c.Clients[1].Requests {
		t.Errorf("weight-8 client got fewer requests than weight-1: %d vs %d",
			c.Clients[0].Requests, c.Clients[1].Requests)
	}
	for _, cl := range c.Clients {
		if cl.Mix == nil || cl.Arrivals == nil {
			t.Fatalf("client %s not fully compiled", cl.Name)
		}
		for _, class := range cl.Mix.Classes {
			if !strings.HasPrefix(class.Name, cl.Name+"/") {
				t.Errorf("class %q not namespaced under client %q", class.Name, cl.Name)
			}
		}
	}
	// The spec-level schedule applies to clients without their own.
	if _, ok := c.Clients[0].Arrivals.(*phased); !ok {
		t.Errorf("spec-level phases not applied to client arrivals")
	}

	// Overrides.
	c2, err := s.Compile(Options{Requests: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Requests != 100 || c2.Seed != 9 {
		t.Errorf("options did not override: %d/%d", c2.Requests, c2.Seed)
	}

	// Too few requests for the client count.
	if _, err := s.Compile(Options{Requests: 1}); err == nil {
		t.Error("Compile accepted fewer requests than clients")
	}
}

func TestSpecDefaultSLOAndWeight(t *testing.T) {
	s := &Spec{
		Name: "t", Requests: 10,
		Clients: []ClientSpec{{
			Name:     "only",
			Arrivals: ArrivalSpec{Process: "poisson", Rate: 1},
			Mix:      []ClassSpec{{Name: "x", Weight: 1, Op: "read", Size: DistSpec{Dist: "fixed", Value: 64}}},
		}},
	}
	c, err := s.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Clients[0].SLO != SLOBestEffort || c.Clients[0].Weight != 1 {
		t.Errorf("defaults not applied: %+v", c.Clients[0])
	}
	if c.Seed != 1 {
		t.Errorf("zero seed should default to 1, got %d", c.Seed)
	}
}

func TestSpecPresetsAllValid(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("want >= 6 presets, got %v", names)
	}
	for _, name := range names {
		s, err := Preset(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if s.Name != name {
			t.Errorf("preset file %s declares name %q", name, s.Name)
		}
		if _, err := s.Compile(Options{}); err != nil {
			t.Errorf("preset %s does not compile: %v", name, err)
		}
	}
}
