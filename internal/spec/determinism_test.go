package spec

import (
	"bytes"
	"testing"

	"dcmodel/internal/trace"
)

// renderCSV serializes a generated trace for byte-level comparison.
func renderCSV(t *testing.T, c *Compiled, workers int) []byte {
	t.Helper()
	tr, err := c.Generate(workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpecGenerateDeterministicAcrossWorkers is the spec engine's
// determinism contract: identical spec + seed produce a byte-identical
// trace at any worker count, and repeated same-seed runs are stable.
func TestSpecGenerateDeterministicAcrossWorkers(t *testing.T) {
	s, err := Preset("webtier")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile(Options{Requests: 600})
	if err != nil {
		t.Fatal(err)
	}
	serial := renderCSV(t, c, 1)
	parallel := renderCSV(t, c, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("Workers=1 and Workers=8 traces differ byte-for-byte")
	}
	again := renderCSV(t, c, 8)
	if !bytes.Equal(parallel, again) {
		t.Fatal("two same-seed runs differ: generation is stateful")
	}

	// A different seed must actually change the output.
	c2, err := s.Compile(Options{Requests: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(serial, renderCSV(t, c2, 1)) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSpecGenerateValidTrace checks the generated trace passes the trace
// schema validator and carries the namespaced classes.
func TestSpecGenerateValidTrace(t *testing.T) {
	s, err := Preset("rag")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile(Options{Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("want 200 requests, got %d", tr.Len())
	}
	seen := map[string]bool{}
	for _, r := range tr.Requests {
		seen[r.Class] = true
	}
	for _, class := range []string{"retrieval/prefix", "retrieval/chunk", "index-refresh/merge"} {
		if !seen[class] {
			t.Errorf("generated trace missing class %s (got %v)", class, seen)
		}
	}
}
