package spec

import (
	"bytes"
	"testing"

	"dcmodel/presets"
)

// fuzzSeeds returns the seed corpus shared by both fuzz targets: every
// shipped preset, a YAML document, and a few adversarial fragments.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		[]byte(sampleYAML),
		[]byte(`{"name":"x","requests":1,"clients":[]}`),
		[]byte("{"),
		[]byte("- - -\n"),
		[]byte("a:\n b: [1, 2\n"),
		[]byte("\t"),
		[]byte("key: 'unterminated\n"),
		[]byte(`{"name": 1e999}`),
	}
	for _, name := range presets.Names() {
		if b, ok := presets.Read(name); ok {
			seeds = append(seeds, b)
		}
	}
	return seeds
}

// FuzzSpecParse asserts Parse and Validate never panic: any input either
// parses (and validates or returns structured errors) or fails cleanly.
func FuzzSpecParse(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Validation must also be panic-free on anything that parses.
		_ = s.Validate()
	})
}

// FuzzSpecRoundTrip asserts render->parse is a fixed point: any input
// that parses must render to a canonical form that reparses to the same
// document, and rendering that reparse reproduces the same bytes.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		r1 := Render(s)
		s2, err := ParseJSON(r1)
		if err != nil {
			t.Fatalf("canonical render does not reparse: %v\nrender:\n%s", err, r1)
		}
		r2 := Render(s2)
		if !bytes.Equal(r1, r2) {
			t.Fatalf("render is not a fixed point:\nfirst:\n%s\nsecond:\n%s", r1, r2)
		}
	})
}
