package spec

import (
	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
)

// Generate simulates the compiled scenario and returns the merged trace.
// Each client drives its own independent partition of the configured
// cluster with a SplitMix64 sub-stream keyed by the client's index, and
// partitions merge by arrival time with a deterministic tie-break —
// exactly the gfs.SimulateSharded scheme, with heterogeneous per-client
// run configs. Workers bounds concurrency only (<= 0 = GOMAXPROCS, 1 =
// serial): the output is byte-identical at any worker count.
func (c *Compiled) Generate(workers int) (*trace.Trace, error) {
	rcs := make([]gfs.RunConfig, len(c.Clients))
	for i, cl := range c.Clients {
		rcs[i] = gfs.RunConfig{
			Mix:      cl.Mix,
			Arrivals: cl.Arrivals,
			Requests: cl.Requests,
			Faults:   c.Faults,
		}
	}
	return gfs.SimulateMulti(c.Cluster, rcs, workers, c.Seed)
}
