package spec

import (
	"bytes"
	"testing"

	"dcmodel/internal/trace"
)

// TestSpecPresetGoldenBinary pins the trace-v2 binary encoding of every
// preset, the `.dct` counterpart of the CSV goldens: the first goldenRows
// requests of each preset's trace are encoded with WriteBinary and
// compared byte-for-byte against testdata/<preset>.golden.dct. Any drift
// in the wire format — header layout, column order, varint or float-delta
// encoding — shows up as a golden diff, and the golden bytes are decoded
// back to prove the fixture itself round-trips losslessly. Regenerate
// with the same -update flag as the CSV goldens.
func TestSpecPresetGoldenBinary(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Compile(Options{Requests: goldenRequests})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := c.Generate(1)
			if err != nil {
				t.Fatal(err)
			}
			head := &trace.Trace{Requests: tr.Requests[:min(tr.Len(), goldenRows)]}
			var bin bytes.Buffer
			if err := trace.WriteBinary(&bin, head); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+".golden.dct", bin.String())

			back, err := trace.ReadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatalf("golden binary failed to decode: %v", err)
			}
			var want, got bytes.Buffer
			if err := trace.WriteCSV(&want, head); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteCSV(&got, back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatal("golden binary round trip not lossless")
			}
		})
	}
}
