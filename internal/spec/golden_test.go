package spec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcmodel/internal/trace"
)

var update = flag.Bool("update", false, "regenerate golden files under testdata/")

// goldenRows is how many span rows (after the header) each preset golden
// pins: enough to cover every client and class, small enough to diff.
const goldenRows = 40

// goldenRequests keeps golden generation fast while covering all clients.
const goldenRequests = 240

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/spec/ -run Golden -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (re-run with -update if intentional)\n got:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestSpecPresetGolden pins the first spans of every preset's generated
// trace: any drift in parsing, compilation, arrival processes, quota
// apportionment or the merge order shows up as a golden diff.
func TestSpecPresetGolden(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Compile(Options{Requests: goldenRequests})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := c.Generate(1)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := trace.WriteCSV(&buf, tr); err != nil {
				t.Fatal(err)
			}
			lines := strings.SplitN(buf.String(), "\n", goldenRows+2)
			head := strings.Join(lines[:min(len(lines)-1, goldenRows+1)], "\n") + "\n"
			checkGolden(t, name+".golden.csv", head)
		})
	}
}
