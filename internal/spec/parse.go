package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcmodel/internal/errs"
)

// Error is one parse or validation problem. Syntax errors carry the
// offending line and column; validation errors carry the JSON field path
// (e.g. "clients[0].arrivals.rate"). Every Error is an errs.ErrBadConfig,
// so cliflag.Fatal exits 2 ("fix your invocation") on a bad spec.
type Error struct {
	// Line and Col locate a syntax error in the source document (1-based;
	// 0 when unknown).
	Line, Col int
	// Path is the dotted field path of a validation or type error.
	Path string
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	switch {
	case e.Path != "" && e.Line > 0:
		return fmt.Sprintf("spec: line %d:%d: %s: %s", e.Line, e.Col, e.Path, e.Msg)
	case e.Path != "":
		return fmt.Sprintf("spec: %s: %s", e.Path, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("spec: line %d:%d: %s", e.Line, e.Col, e.Msg)
	default:
		return "spec: " + e.Msg
	}
}

// Unwrap marks every spec error as a configuration error.
func (e *Error) Unwrap() error { return errs.ErrBadConfig }

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, off int64) (line, col int) {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// decodeJSON unmarshals data into a Spec, rejecting unknown fields and
// mapping encoding/json errors onto *Error. src is nil when the JSON was
// machine-generated from YAML (no meaningful offsets).
func decodeJSON(data []byte, src []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, jsonError(src, err)
	}
	// A spec is one document: trailing non-space content is an error.
	if dec.More() {
		e := &Error{Msg: "trailing data after the spec document"}
		if src != nil {
			e.Line, e.Col = lineCol(src, dec.InputOffset())
		}
		return nil, e
	}
	return &s, nil
}

// jsonError converts an encoding/json error into an *Error with line/col
// (when src is the original document) and field context.
func jsonError(src []byte, err error) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		out := &Error{Msg: e.Error()}
		if src != nil {
			out.Line, out.Col = lineCol(src, e.Offset)
		}
		return out
	case *json.UnmarshalTypeError:
		out := &Error{Path: e.Field, Msg: fmt.Sprintf("cannot decode %s into %s", e.Value, e.Type)}
		if src != nil {
			out.Line, out.Col = lineCol(src, e.Offset)
		}
		return out
	default:
		// DisallowUnknownFields and wrapper errors: keep the message,
		// which already names the field.
		return &Error{Msg: strings.TrimPrefix(err.Error(), "json: ")}
	}
}

// ParseJSON parses a JSON spec document. Syntax and type errors are
// line/column-precise; unknown fields are rejected by name.
func ParseJSON(data []byte) (*Spec, error) {
	return decodeJSON(data, data)
}

// ParseYAML parses a spec written in the package's YAML subset (see
// yaml.go for the grammar). Structural errors are line-precise.
func ParseYAML(data []byte) (*Spec, error) {
	v, err := yamlToAny(data)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(v)
	if err != nil {
		// yamlToAny only emits JSON-compatible values; unreachable.
		return nil, &Error{Msg: err.Error()}
	}
	return decodeJSON(b, nil)
}

// Parse sniffs the document format — JSON when the first non-space byte
// is '{', the YAML subset otherwise — and parses it. Parse is syntactic
// only; call Validate (or use Load/Resolve) for semantic checks.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return ParseJSON(data)
	}
	return ParseYAML(data)
}

// Render produces the canonical JSON form of a spec: indented,
// field-ordered, newline-terminated. Parse(Render(s)) is the identity on
// the Spec value, which makes render->parse a fixed point (the
// FuzzSpecRoundTrip property).
func Render(s *Spec) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec contains only JSON-marshalable fields; unreachable.
		panic(err)
	}
	return append(b, '\n')
}

// Load reads and parses a spec file, selecting the format by extension
// (.json / .yaml / .yml; anything else is sniffed), and validates it.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var s *Spec
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		s, err = ParseJSON(data)
	case ".yaml", ".yml":
		s, err = ParseYAML(data)
	default:
		s, err = Parse(data)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
