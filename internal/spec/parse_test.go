package spec

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dcmodel/internal/errs"
)

// sampleYAML exercises every YAML-subset feature: comments, quoting,
// nested mappings, block sequences of mappings, flow sequences, booleans
// and the document marker.
const sampleYAML = `---
# sample spec exercising the YAML subset
name: yamltest
description: 'it''s a #sample'  # trailing comment
seed: 7
requests: 100
cluster:
  chunkservers: 2
  cache_hit_prob: 0.5
phases:
  - name: "night"
    duration: 10
    rate_scale: 0.5
  - name: day
    duration: 5
    rate_scale: 2.0
cycle: true
clients:
  - name: a
    weight: 3
    slo: interactive
    arrivals:
      process: mmpp
      rate: 20
      rates: [40, 5]
      holds: [1, 2]
    mix:
      - name: get
        weight: 1
        op: read
        size:
          dist: lognormal
          mu: 9.5
          sigma: 1.2
        sequential: 0.2
  - name: b
    arrivals:
      process: poisson
      rate: 5
    mix:
      - name: put
        weight: 1
        op: write
        size:
          dist: fixed
          value: 4096
`

func TestSpecParseYAMLSample(t *testing.T) {
	s, err := ParseYAML([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "yamltest" || s.Seed != 7 || s.Requests != 100 || !s.Cycle {
		t.Errorf("header fields wrong: %+v", s)
	}
	if s.Description != "it's a #sample" {
		t.Errorf("single-quote escaping broke: %q", s.Description)
	}
	if s.Cluster == nil || s.Cluster.Chunkservers != 2 || s.Cluster.CacheHitProb != 0.5 {
		t.Errorf("cluster wrong: %+v", s.Cluster)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "night" || s.Phases[1].RateScale != 2 {
		t.Errorf("phases wrong: %+v", s.Phases)
	}
	if len(s.Clients) != 2 {
		t.Fatalf("want 2 clients, got %d", len(s.Clients))
	}
	a := s.Clients[0]
	if a.SLO != SLOInteractive || a.Weight != 3 {
		t.Errorf("client a wrong: %+v", a)
	}
	if !reflect.DeepEqual(a.Arrivals.Rates, []float64{40, 5}) || !reflect.DeepEqual(a.Arrivals.Holds, []float64{1, 2}) {
		t.Errorf("flow sequences wrong: %+v", a.Arrivals)
	}
	if a.Mix[0].Size.Dist != "lognormal" || a.Mix[0].Size.Sigma != 1.2 {
		t.Errorf("nested size wrong: %+v", a.Mix[0].Size)
	}
	if s.Clients[1].Mix[0].Size.Value != 4096 {
		t.Errorf("client b size wrong: %+v", s.Clients[1].Mix[0].Size)
	}
}

func TestSpecYAMLEquivalentToJSON(t *testing.T) {
	y, err := ParseYAML([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	j, err := ParseJSON(Render(y))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, j) {
		t.Errorf("YAML and its canonical JSON parse differently:\n%+v\n%+v", y, j)
	}
}

func TestSpecYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
		wantLine           int
	}{
		{"tab indent", "name: x\n\tseed: 1\n", "tab indentation", 2},
		{"flow mapping", "name: x\ncluster: {chunkservers: 2}\n", "flow mappings", 2},
		{"unterminated quote", "name: \"oops\n", "unterminated quoted string", 1},
		{"duplicate key", "name: x\nname: y\n", "duplicate key", 2},
		{"bad indent", "cluster:\n  chunkservers: 1\n    files: 2\n", "indentation", 3},
		{"list in mapping", "cluster:\n  - 1\n  chunkservers: 2\n", "", 3},
		{"nested flow", "phases: [[1], 2]\n", "nested flow", 1},
		{"unterminated flow", "phases: [1, 2\n", "missing ']'", 1},
		{"no key", "cluster:\n  justaword\n", "expected 'key: value'", 2},
		{"empty doc", "# only a comment\n", "empty document", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseYAML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.doc)
			}
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("want *Error, got %T: %v", err, err)
			}
			if tc.wantSub != "" && !strings.Contains(e.Msg, tc.wantSub) {
				t.Errorf("error %q does not mention %q", e.Msg, tc.wantSub)
			}
			if tc.wantLine > 0 && e.Line != tc.wantLine {
				t.Errorf("error on line %d, want %d: %v", e.Line, tc.wantLine, err)
			}
			if !errors.Is(err, errs.ErrBadConfig) {
				t.Errorf("spec error should unwrap to ErrBadConfig")
			}
		})
	}
}

func TestSpecParseJSONSyntaxErrorLineCol(t *testing.T) {
	doc := "{\n  \"name\": \"x\",\n  \"requests\": oops\n}\n"
	_, err := ParseJSON([]byte(doc))
	if err == nil {
		t.Fatal("parse accepted bad JSON")
	}
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("want *Error, got %T", err)
	}
	if e.Line != 3 {
		t.Errorf("syntax error located at line %d, want 3: %v", e.Line, err)
	}
}

func TestSpecParseJSONTypeError(t *testing.T) {
	doc := `{"name": "x", "requests": "lots"}`
	_, err := ParseJSON([]byte(doc))
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if !strings.Contains(e.Path, "requests") {
		t.Errorf("type error path %q does not name the field", e.Path)
	}
}

func TestSpecParseJSONUnknownField(t *testing.T) {
	doc := `{"name": "x", "requests": 1, "rps": 50}`
	_, err := ParseJSON([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "rps") {
		t.Errorf("unknown field not rejected by name: %v", err)
	}
}

func TestSpecParseJSONTrailingData(t *testing.T) {
	doc := `{"name": "x", "requests": 1, "clients": []} {"second": true}`
	_, err := ParseJSON([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing document not rejected: %v", err)
	}
}

func TestSpecParseSniffsFormat(t *testing.T) {
	if _, err := Parse([]byte(sampleYAML)); err != nil {
		t.Errorf("sniffed YAML failed: %v", err)
	}
	data, _ := Preset("webtier")
	if _, err := Parse(Render(data)); err != nil {
		t.Errorf("sniffed JSON failed: %v", err)
	}
}

func TestSpecRenderParseFixedPoint(t *testing.T) {
	for _, name := range Names() {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		r1 := Render(s)
		s2, err := ParseJSON(r1)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", name, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("%s: render->parse changed the spec", name)
		}
		if r2 := Render(s2); string(r1) != string(r2) {
			t.Errorf("%s: render is not a fixed point", name)
		}
	}
}

func TestSpecLoad(t *testing.T) {
	dir := t.TempDir()
	yml := filepath.Join(dir, "s.yaml")
	if err := os.WriteFile(yml, []byte(sampleYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(yml)
	if err != nil {
		t.Fatal(err)
	}
	jsn := filepath.Join(dir, "s.json")
	if err := os.WriteFile(jsn, Render(s), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(jsn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Error("Load(.yaml) and Load(.json) of the same spec disagree")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of a missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x"}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("Load skipped validation")
	}
}

func TestSpecResolve(t *testing.T) {
	// A preset name, with or without directory/extension decoration.
	for _, ref := range []string{"webtier", "presets/webtier.json", "webtier.yaml"} {
		s, err := Resolve(ref)
		if err != nil {
			// presets/webtier.json resolves as a real file from the repo
			// root; from the package dir it falls back to the preset name.
			t.Fatalf("Resolve(%q): %v", ref, err)
		}
		if s.Name != "webtier" {
			t.Errorf("Resolve(%q) = spec %q", ref, s.Name)
		}
	}
	if _, err := Resolve("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "webtier") {
		t.Errorf("unknown ref should list valid presets, got: %v", err)
	}
	// A real file wins over preset-name fallback.
	dir := t.TempDir()
	path := filepath.Join(dir, "webtier.yaml")
	doc := strings.Replace(sampleYAML, "name: yamltest", "name: local-override", 1)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "local-override" {
		t.Errorf("Resolve(existing file) ignored the file, got spec %q", s.Name)
	}
}
