package spec

import (
	"math/rand"
	"sort"

	"dcmodel/internal/workload"
)

// Phase schedules modulate an arrival process by time-rescaling: a phase
// with RateScale c compresses real time by c, so arrivals land c times as
// densely while the base process's draw sequence — and therefore the
// determinism contract — is untouched. The base process runs on an
// "operational" clock tau; the schedule maps tau back to real time t via
// the inverse of the cumulative scale function. Because every RateScale
// is positive the map is strictly increasing, so arrival order is
// preserved exactly.

// phased wraps a base arrival process with a phase schedule.
type phased struct {
	base  workload.Arrivals
	sched []PhaseSpec
	cycle bool

	// realBP[k] / opBP[k] are the cumulative real and operational times at
	// the start of segment k; both have len(sched)+1 entries, the last
	// being the schedule totals.
	realBP, opBP []float64
}

// Phased applies a phase schedule to base. An empty schedule returns base
// unchanged. With cycle the schedule repeats indefinitely; otherwise time
// past the last phase runs at nominal (scale 1) rate.
func Phased(base workload.Arrivals, phases []PhaseSpec, cycle bool) workload.Arrivals {
	if len(phases) == 0 {
		return base
	}
	p := &phased{base: base, sched: phases, cycle: cycle}
	p.realBP = make([]float64, len(phases)+1)
	p.opBP = make([]float64, len(phases)+1)
	for k, ph := range phases {
		p.realBP[k+1] = p.realBP[k] + ph.Duration
		p.opBP[k+1] = p.opBP[k] + ph.Duration*ph.RateScale
	}
	return p
}

// realTime maps an operational instant tau to real time.
func (p *phased) realTime(tau float64) float64 {
	totOp, totReal := p.opBP[len(p.opBP)-1], p.realBP[len(p.realBP)-1]
	var base float64
	if tau >= totOp {
		if !p.cycle {
			// Past the schedule: continue at nominal rate.
			return totReal + (tau - totOp)
		}
		cycles := int(tau / totOp)
		base = float64(cycles) * totReal
		tau -= float64(cycles) * totOp
	}
	// Find the segment holding tau: the last k with opBP[k] <= tau.
	k := sort.SearchFloat64s(p.opBP, tau)
	if k == len(p.opBP) || p.opBP[k] != tau {
		k--
	}
	if k < 0 {
		k = 0
	}
	if k >= len(p.sched) {
		k = len(p.sched) - 1
	}
	return base + p.realBP[k] + (tau-p.opBP[k])/p.sched[k].RateScale
}

// Times implements workload.Arrivals: the base process's times are read
// as operational instants and mapped through the schedule.
func (p *phased) Times(n int, r *rand.Rand) []float64 {
	out := p.base.Times(n, r)
	for i, tau := range out {
		out[i] = p.realTime(tau)
	}
	return out
}
