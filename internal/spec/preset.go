package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcmodel/presets"
)

// Preset parses and validates the named embedded preset.
func Preset(name string) (*Spec, error) {
	data, ok := presets.Read(name)
	if !ok {
		return nil, pathErr("", "unknown preset %q (valid: %s)", name, strings.Join(presets.Names(), ", "))
	}
	s, err := ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("preset %s: %w", name, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("preset %s: %w", name, err)
	}
	return s, nil
}

// Names lists the embedded preset names.
func Names() []string { return presets.Names() }

// Resolve turns a -spec argument into a validated spec: a path to an
// existing file loads that file; otherwise the argument (with any
// directory and extension stripped, so "presets/webtier.json" works even
// outside the repo) names an embedded preset.
func Resolve(arg string) (*Spec, error) {
	if arg == "" {
		return nil, pathErr("", "empty spec reference")
	}
	if _, err := os.Stat(arg); err == nil {
		return Load(arg)
	}
	name := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
	if _, ok := presets.Read(name); ok {
		return Preset(name)
	}
	return nil, pathErr("", "spec %q is neither a readable file nor a preset (presets: %s)", arg, strings.Join(presets.Names(), ", "))
}
