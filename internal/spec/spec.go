// Package spec is the declarative workload-spec engine: one JSON (or thin
// YAML-subset) document describes a complete multi-client scenario —
// per-client arrival process (Poisson / MMPP / self-similar /
// deterministic), request-class mix with size distributions, SLO class,
// and a phase schedule (diurnal cycles, surges, flash crowds) — and
// compiles into the existing internal/workload and internal/trace types.
//
// One spec artifact drives every consumer the same way: `gfstrace -spec`,
// `synth -spec` and `crossexam -spec` generate their workload from it,
// `loadgen -spec` streams it into a running dcmodeld, and `dcmodeld
// -warm-spec` pre-warms the daemon's window with it at boot.
//
// The pipeline is Parse (or Load / Resolve) -> Validate -> Compile ->
// Generate:
//
//	s, err := spec.Resolve("presets/webtier.json") // path or preset name
//	c, err := s.Compile(spec.Options{})
//	tr, err := c.Generate(0) // workers; output identical for any value
//
// Determinism contract: identical spec + seed produce a byte-identical
// trace at any worker count. Each client drives its own independent GFS
// cluster partition with a SplitMix64 sub-stream keyed by the client's
// index (never by worker count or scheduling), and partitions merge with
// a deterministic tie-break, exactly like gfs.SimulateSharded.
package spec

// SLO is a client's service-level-objective class. It labels the client's
// share of the workload for load generators and scorers; it does not
// change how requests are simulated.
type SLO string

// The SLO classes a spec may assign to a client.
const (
	SLOInteractive SLO = "interactive"
	SLOThroughput  SLO = "throughput"
	SLOBatch       SLO = "batch"
	SLOBestEffort  SLO = "best-effort"
)

// SLOs lists the valid SLO classes in canonical order.
func SLOs() []SLO {
	return []SLO{SLOInteractive, SLOThroughput, SLOBatch, SLOBestEffort}
}

// Spec is the root of a workload-spec document.
type Spec struct {
	// Name identifies the scenario (preset files use their file name).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed is the master random seed; 0 means 1. Identical spec + seed
	// generate byte-identical traces at any worker count.
	Seed int64 `json:"seed,omitempty"`
	// Requests is the total request count across all clients.
	Requests int `json:"requests"`
	// Cluster optionally overrides the simulated-cluster shape; nil keeps
	// gfs.DefaultConfig.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Phases is the spec-wide phase schedule applied to every client that
	// does not declare its own (diurnal cycles, surges, flash crowds).
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Cycle repeats the spec-wide schedule indefinitely; false extends
	// past the last phase at nominal (scale 1) rate.
	Cycle bool `json:"cycle,omitempty"`
	// Clients are the concurrent workload sources composing the scenario.
	Clients []ClientSpec `json:"clients"`
}

// ClusterSpec overrides fields of the simulated GFS cluster. Zero-valued
// fields keep the gfs.DefaultConfig value.
type ClusterSpec struct {
	// Chunkservers is the per-client-partition chunkserver count.
	Chunkservers int `json:"chunkservers,omitempty"`
	// Files is the namespace size.
	Files int `json:"files,omitempty"`
	// Replication is the replicas per chunk.
	Replication int `json:"replication,omitempty"`
	// PopularitySkew is the Zipf skew of file popularity.
	PopularitySkew float64 `json:"popularity_skew,omitempty"`
	// SegmentBytes quantizes offsets to hot/cold segments of this size.
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// SegmentSkew is the Zipf skew of segment popularity.
	SegmentSkew float64 `json:"segment_skew,omitempty"`
	// CacheHitProb is the page-cache hit probability for reads.
	CacheHitProb float64 `json:"cache_hit_prob,omitempty"`
}

// ClientSpec is one workload source of the scenario.
type ClientSpec struct {
	// Name labels the client; generated request classes are
	// "<client>/<class>".
	Name string `json:"name"`
	// Weight is the client's share of Spec.Requests; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// SLO is the client's service class; empty means best-effort.
	SLO SLO `json:"slo,omitempty"`
	// Arrivals is the client's arrival process.
	Arrivals ArrivalSpec `json:"arrivals"`
	// Phases overrides the spec-wide phase schedule for this client.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Cycle repeats this client's schedule (only consulted when Phases is
	// set).
	Cycle bool `json:"cycle,omitempty"`
	// Mix is the client's request-class mix.
	Mix []ClassSpec `json:"mix"`
}

// ArrivalSpec declares an arrival process. Rate is the nominal rate in
// requests/second and is required by every process; the remaining fields
// are per-process overrides of the canonical internal/workload defaults.
type ArrivalSpec struct {
	// Process is one of "poisson", "mmpp", "selfsimilar",
	// "deterministic".
	Process string `json:"process"`
	// Rate is the nominal arrival rate (requests/second).
	Rate float64 `json:"rate,omitempty"`
	// Interval overrides 1/Rate for the deterministic process.
	Interval float64 `json:"interval,omitempty"`
	// Rates and Holds override the two MMPP state rates and mean holding
	// times (both need exactly two entries).
	Rates []float64 `json:"rates,omitempty"`
	Holds []float64 `json:"holds,omitempty"`
	// Sources, OnRate, MeanOn, MeanOff and Alpha override the
	// self-similar superposition's parameters.
	Sources int     `json:"sources,omitempty"`
	OnRate  float64 `json:"on_rate,omitempty"`
	MeanOn  float64 `json:"mean_on,omitempty"`
	MeanOff float64 `json:"mean_off,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
}

// ClassSpec is one request class of a client's mix.
type ClassSpec struct {
	// Name labels the class within the client.
	Name string `json:"name"`
	// Weight is the class's share of the client's request stream.
	Weight float64 `json:"weight"`
	// Op is "read" or "write".
	Op string `json:"op"`
	// Size is the request-size distribution in bytes.
	Size DistSpec `json:"size"`
	// Sequential is the probability an I/O continues sequentially from
	// the class's previous I/O, in [0, 1].
	Sequential float64 `json:"sequential,omitempty"`
}

// DistSpec declares a size distribution. Dist selects the family; only
// that family's parameter fields are consulted.
type DistSpec struct {
	// Dist is one of "fixed", "lognormal", "pareto", "exponential",
	// "uniform", "weibull".
	Dist string `json:"dist"`
	// Value is the fixed size (fixed).
	Value float64 `json:"value,omitempty"`
	// Mu and Sigma are the log-space parameters (lognormal).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Xm and Alpha are the scale and shape (pareto).
	Xm    float64 `json:"xm,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	// Mean is the mean size (exponential).
	Mean float64 `json:"mean,omitempty"`
	// A and B are the bounds (uniform).
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	// Shape and Scale are the Weibull k and lambda.
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// PhaseSpec is one segment of a phase schedule: for Duration seconds of
// real time the client's instantaneous arrival rate is scaled by
// RateScale (interarrival gaps divided by it).
type PhaseSpec struct {
	// Name labels the phase (e.g. "night", "flash-crowd").
	Name string `json:"name,omitempty"`
	// Duration is the phase length in seconds of real time.
	Duration float64 `json:"duration"`
	// RateScale multiplies the nominal arrival rate during the phase
	// (must be > 0).
	RateScale float64 `json:"rate_scale"`
}
