package spec

import (
	"errors"
	"fmt"
)

// pathErr builds a field-path validation error.
func pathErr(path, format string, args ...any) error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the spec semantically and returns every problem found,
// joined (errors.Join), each carrying its dotted field path. A nil return
// means the spec compiles.
func (s *Spec) Validate() error {
	var problems []error
	bad := func(path, format string, args ...any) {
		problems = append(problems, pathErr(path, format, args...))
	}

	if s.Name == "" {
		bad("name", "spec needs a name")
	}
	if s.Requests < 1 {
		bad("requests", "need >= 1 request, got %d", s.Requests)
	}
	if s.Seed < 0 {
		bad("seed", "seed must be >= 0, got %d", s.Seed)
	}
	if s.Cluster != nil {
		validateCluster(s.Cluster, "cluster", bad)
	}
	validatePhases(s.Phases, "phases", bad)

	if len(s.Clients) == 0 {
		bad("clients", "spec needs at least one client")
	}
	seen := map[string]bool{}
	for i, c := range s.Clients {
		p := fmt.Sprintf("clients[%d]", i)
		if c.Name == "" {
			bad(p+".name", "client needs a name")
		} else if seen[c.Name] {
			bad(p+".name", "duplicate client name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			bad(p+".weight", "weight must be >= 0, got %g", c.Weight)
		}
		if !validSLO(c.SLO) {
			bad(p+".slo", "unknown SLO class %q (valid: %v)", c.SLO, SLOs())
		}
		if _, err := BuildArrivals(c.Arrivals); err != nil {
			problems = append(problems, prefixPath(err, p+".arrivals"))
		}
		validatePhases(c.Phases, p+".phases", bad)
		if len(c.Mix) == 0 {
			bad(p+".mix", "client needs at least one mix class")
		}
		for j, cl := range c.Mix {
			cp := fmt.Sprintf("%s.mix[%d]", p, j)
			if cl.Name == "" {
				bad(cp+".name", "class needs a name")
			}
			if cl.Weight <= 0 {
				bad(cp+".weight", "weight must be > 0, got %g", cl.Weight)
			}
			if cl.Op != "read" && cl.Op != "write" {
				bad(cp+".op", "op must be \"read\" or \"write\", got %q", cl.Op)
			}
			if _, err := BuildDist(cl.Size); err != nil {
				problems = append(problems, prefixPath(err, cp+".size"))
			}
			if cl.Sequential < 0 || cl.Sequential > 1 {
				bad(cp+".sequential", "sequential probability %g outside [0, 1]", cl.Sequential)
			}
		}
	}
	return errors.Join(problems...)
}

// validSLO reports whether s names an SLO class (empty = best-effort).
func validSLO(s SLO) bool {
	if s == "" {
		return true
	}
	for _, v := range SLOs() {
		if s == v {
			return true
		}
	}
	return false
}

// validatePhases checks one phase schedule.
func validatePhases(phases []PhaseSpec, path string, bad func(path, format string, args ...any)) {
	for k, ph := range phases {
		p := fmt.Sprintf("%s[%d]", path, k)
		if ph.Duration <= 0 {
			bad(p+".duration", "duration must be > 0, got %g", ph.Duration)
		}
		if ph.RateScale <= 0 {
			bad(p+".rate_scale", "rate_scale must be > 0, got %g", ph.RateScale)
		}
	}
}

// validateCluster checks cluster overrides.
func validateCluster(c *ClusterSpec, path string, bad func(path, format string, args ...any)) {
	if c.Chunkservers < 0 {
		bad(path+".chunkservers", "must be >= 0, got %d", c.Chunkservers)
	}
	if c.Files < 0 {
		bad(path+".files", "must be >= 0, got %d", c.Files)
	}
	if c.Replication < 0 {
		bad(path+".replication", "must be >= 0, got %d", c.Replication)
	}
	if c.PopularitySkew < 0 {
		bad(path+".popularity_skew", "must be >= 0, got %g", c.PopularitySkew)
	}
	if c.SegmentBytes < 0 {
		bad(path+".segment_bytes", "must be >= 0, got %d", c.SegmentBytes)
	}
	if c.SegmentSkew < 0 {
		bad(path+".segment_skew", "must be >= 0, got %g", c.SegmentSkew)
	}
	if c.CacheHitProb < 0 || c.CacheHitProb > 1 {
		bad(path+".cache_hit_prob", "probability %g outside [0, 1]", c.CacheHitProb)
	}
}

// prefixPath prepends prefix to err's field path when err is an *Error
// (dotting into sub-builders' relative paths); other errors pass through
// wrapped at the prefix.
func prefixPath(err error, prefix string) error {
	var e *Error
	if errors.As(err, &e) {
		out := *e
		if out.Path == "" {
			out.Path = prefix
		} else {
			out.Path = prefix + "." + out.Path
		}
		return &out
	}
	return pathErr(prefix, "%v", err)
}
