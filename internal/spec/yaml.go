package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Thin YAML-subset reader. The subset covers what workload specs need —
// and nothing else — so it stays stdlib-only and line-precise:
//
//   - mappings: `key: value`, nested by space indentation
//   - sequences: `- item` block items (scalars or mappings), plus flow
//     sequences of scalars `[a, b]`
//   - scalars: null/~, true/false, integers, floats, quoted ("..." and
//     '...') and bare strings
//   - comments: `#` to end of line (outside quotes), blank lines, an
//     optional leading `---` document marker
//
// Not supported (rejected with a line-precise error): tab indentation,
// flow mappings `{...}`, nested flow sequences, anchors/aliases, multi-
// document streams, block scalars (| and >).

// yamlLine is one significant source line: its 1-based number, indent
// column, and content with the indent and any trailing comment removed.
type yamlLine struct {
	num    int
	indent int
	text   string
}

// yamlLines splits a document into significant lines.
func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		line := strings.TrimSuffix(raw, "\r")
		text, err := stripComment(line, num)
		if err != nil {
			return nil, err
		}
		text = strings.TrimRight(text, " \t")
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" || (trimmed == "---" && len(out) == 0) {
			continue
		}
		indent := len(text) - len(trimmed)
		if strings.ContainsRune(text[:indent], '\t') || strings.HasPrefix(trimmed, "\t") {
			return nil, &Error{Line: num, Msg: "tab indentation is not supported (use spaces)"}
		}
		out = append(out, yamlLine{num: num, indent: indent, text: trimmed})
	}
	return out, nil
}

// stripComment removes a trailing `#` comment that is outside quotes and
// either starts the line or follows whitespace.
func stripComment(line string, num int) (string, error) {
	var inSingle, inDouble bool
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				return line[:i], nil
			}
		}
	}
	if inSingle || inDouble {
		return "", &Error{Line: num, Msg: "unterminated quoted string"}
	}
	return line, nil
}

// yamlToAny parses the YAML subset into a JSON-compatible value tree:
// map[string]any, []any, string, int64, float64, bool or nil.
func yamlToAny(data []byte) (any, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, &Error{Msg: "empty document"}
	}
	p := &yparser{lines: lines}
	v, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		ln := p.lines[p.i]
		return nil, &Error{Line: ln.num, Msg: fmt.Sprintf("unexpected content %q after the document root", ln.text)}
	}
	return v, nil
}

type yparser struct {
	lines []yamlLine
	i     int
}

// isSeqItem reports whether a line starts a block sequence item.
func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseBlock parses the mapping or sequence starting at the current line,
// whose indent column defines the block.
func (p *yparser) parseBlock() (any, error) {
	ln := p.lines[p.i]
	if isSeqItem(ln.text) {
		return p.parseSeq(ln.indent)
	}
	return p.parseMap(ln.indent)
}

// parseMap parses mapping entries at exactly the given indent.
func (p *yparser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &Error{Line: ln.num, Msg: fmt.Sprintf("unexpected indentation (want column %d, got %d)", indent+1, ln.indent+1)}
		}
		if isSeqItem(ln.text) {
			return nil, &Error{Line: ln.num, Msg: "unexpected list item inside a mapping"}
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, &Error{Line: ln.num, Msg: fmt.Sprintf("duplicate key %q", key)}
		}
		p.i++
		if rest == "" {
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				v, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				m[key] = v
			} else {
				m[key] = nil
			}
			continue
		}
		v, err := scalarOrFlow(rest, ln.num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// parseSeq parses `- item` entries at exactly the given indent.
func (p *yparser) parseSeq(indent int) (any, error) {
	out := []any{}
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &Error{Line: ln.num, Msg: fmt.Sprintf("unexpected indentation in sequence (want column %d, got %d)", indent+1, ln.indent+1)}
		}
		if !isSeqItem(ln.text) {
			return nil, &Error{Line: ln.num, Msg: "expected a '- ' list item"}
		}
		if ln.text == "-" {
			p.i++
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				v, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
			continue
		}
		content := strings.TrimLeft(ln.text[1:], " ")
		contentCol := ln.indent + len(ln.text) - len(content)
		if hasKey(content) {
			// A `- key: value` item: rewrite the line as the first entry
			// of a nested mapping at the content column, then parse the
			// mapping (its continuation lines sit at that column).
			p.lines[p.i] = yamlLine{num: ln.num, indent: contentCol, text: content}
			v, err := p.parseMap(contentCol)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		p.i++
		v, err := scalarOrFlow(content, ln.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// keySplit finds the colon ending a mapping key: the first ':' outside
// quotes that is followed by a space or ends the text. Returns -1 when
// absent.
func keySplit(text string) int {
	var inSingle, inDouble bool
	for i := 0; i < len(text); i++ {
		switch c := text[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == ':' && !inSingle && !inDouble:
			if i == len(text)-1 || text[i+1] == ' ' {
				return i
			}
		}
	}
	return -1
}

// hasKey reports whether text starts a mapping entry.
func hasKey(text string) bool { return keySplit(text) >= 0 }

// splitKey splits a mapping line into its key and the trimmed remainder.
func splitKey(ln yamlLine) (key, rest string, err error) {
	i := keySplit(ln.text)
	if i < 0 {
		return "", "", &Error{Line: ln.num, Msg: fmt.Sprintf("expected 'key: value', got %q", ln.text)}
	}
	key = strings.TrimSpace(ln.text[:i])
	if k, ok := unquote(key); ok {
		key = k
	}
	if key == "" {
		return "", "", &Error{Line: ln.num, Msg: "empty mapping key"}
	}
	return key, strings.TrimSpace(ln.text[i+1:]), nil
}

// scalarOrFlow parses a scalar value or a flow sequence of scalars.
func scalarOrFlow(s string, num int) (any, error) {
	if strings.HasPrefix(s, "{") {
		return nil, &Error{Line: num, Msg: "flow mappings {...} are not supported (use block mapping lines)"}
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, &Error{Line: num, Msg: "unterminated flow sequence (missing ']')"}
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		if strings.ContainsAny(inner, "[]{}") {
			return nil, &Error{Line: num, Msg: "nested flow collections are not supported"}
		}
		parts := strings.Split(inner, ",")
		out := make([]any, 0, len(parts))
		for _, part := range parts {
			v, err := scalar(strings.TrimSpace(part), num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return scalar(s, num)
}

// unquote strips matching single or double quotes, reporting whether the
// string was quoted. Double quotes honor Go escape sequences; single
// quotes honor the YAML '' escape.
func unquote(s string) (string, bool) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u, true
		}
		return s[1 : len(s)-1], true
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), true
	}
	return s, false
}

// scalar parses one scalar token.
func scalar(s string, num int) (any, error) {
	if u, ok := unquote(s); ok {
		return u, nil
	}
	switch s {
	case "", "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
