// Package sqs implements a Stochastic Queuing Simulation in the style of
// Meisner et al.: a two-phase datacenter-level evaluation methodology. The
// first phase characterizes the workload online — recording task arrival
// rates and service requirements into bounded-memory empirical models via
// statistical sampling. The second phase feeds those empirical models into
// a queueing simulation of candidate system configurations, scaling to
// large server counts "without significant overhead with appropriate
// tuning of the sampling parameters".
package sqs

import (
	"fmt"
	"math/rand"

	"dcmodel/internal/queueing"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Characterizer is the online phase: it observes (arrival time, service
// demand) pairs and maintains reservoir-sampled empirical models.
type Characterizer struct {
	interarrival *stats.Reservoir
	service      *stats.Reservoir
	lastArrival  float64
	observed     int64
}

// NewCharacterizer returns a characterizer with the given per-model sample
// budget (the SQS "sampling parameter").
func NewCharacterizer(maxSamples int, r *rand.Rand) (*Characterizer, error) {
	if maxSamples < 2 {
		return nil, fmt.Errorf("sqs: sample budget must be >= 2, got %d", maxSamples)
	}
	return &Characterizer{
		interarrival: stats.NewReservoir(maxSamples, r),
		service:      stats.NewReservoir(maxSamples, r),
	}, nil
}

// Observe records one task: its arrival instant (non-decreasing) and its
// service demand in seconds.
func (c *Characterizer) Observe(arrival, service float64) error {
	if arrival < c.lastArrival {
		return fmt.Errorf("sqs: arrivals must be non-decreasing (%g after %g)", arrival, c.lastArrival)
	}
	if service < 0 {
		return fmt.Errorf("sqs: negative service demand %g", service)
	}
	if c.observed > 0 {
		c.interarrival.Add(arrival - c.lastArrival)
	}
	c.lastArrival = arrival
	c.service.Add(service)
	c.observed++
	return nil
}

// ObserveTrace characterizes a whole workload trace: arrivals are request
// arrivals and the service demand is the request's total busy time (sum of
// span durations).
func (c *Characterizer) ObserveTrace(tr *trace.Trace) error {
	if tr == nil || tr.Len() == 0 {
		return trace.ErrEmptyTrace
	}
	sorted := &trace.Trace{Requests: append([]trace.Request(nil), tr.Requests...)}
	sorted.SortByArrival()
	for _, r := range sorted.Requests {
		var service float64
		for _, s := range r.Spans {
			service += s.Duration
		}
		if err := c.Observe(r.Arrival, service); err != nil {
			return err
		}
	}
	return nil
}

// Observed returns the number of tasks characterized.
func (c *Characterizer) Observed() int64 { return c.observed }

// Model is the empirical workload model of the first phase.
type Model struct {
	// Interarrival and Service are the empirical distributions.
	Interarrival, Service *stats.Empirical
	// Rate is the mean arrival rate.
	Rate float64
	// MeanService is the mean service demand.
	MeanService float64
}

// Model freezes the characterizer into an empirical workload model.
func (c *Characterizer) Model() (*Model, error) {
	if c.observed < 3 {
		return nil, fmt.Errorf("sqs: need >= 3 observations, got %d", c.observed)
	}
	inter, err := c.interarrival.Empirical()
	if err != nil {
		return nil, err
	}
	svc, err := c.service.Empirical()
	if err != nil {
		return nil, err
	}
	m := &Model{Interarrival: inter, Service: svc, MeanService: svc.Mean()}
	if mean := inter.Mean(); mean > 0 {
		m.Rate = 1 / mean
	}
	return m, nil
}

// Result is the outcome of evaluating one configuration.
type Result struct {
	// Servers is the evaluated server count.
	Servers int
	// Utilization is the per-server utilization.
	Utilization float64
	// MeanResponse, P95 and P99 are response-time statistics (seconds).
	MeanResponse, P95, P99 float64
	// Throughput is the completed-task rate.
	Throughput float64
}

// Evaluate runs the queueing phase: the empirical workload against a farm
// of identical servers (one shared FIFO queue, k servers — the
// router-with-central-queue abstraction), simulating the given number of
// tasks.
func (m *Model) Evaluate(servers, tasks int, r *rand.Rand) (Result, error) {
	if servers < 1 {
		return Result{}, fmt.Errorf("sqs: need >= 1 server, got %d", servers)
	}
	if tasks < 10 {
		return Result{}, fmt.Errorf("sqs: need >= 10 tasks, got %d", tasks)
	}
	// Stability check.
	rho := m.Rate * m.MeanService / float64(servers)
	if rho >= 1 {
		return Result{}, fmt.Errorf("sqs: configuration unstable (utilization %.2f >= 1)", rho)
	}
	cfg := queueing.Config{
		Stations: []queueing.Station{{
			Name: "farm", Servers: servers, Service: m.Service,
		}},
		Classes:      []queueing.Class{{Name: "task", Weight: 1, Path: []int{0}}},
		Interarrival: m.Interarrival,
		NumJobs:      tasks,
		Warmup:       tasks / 10,
	}
	res, err := queueing.Simulate(cfg, r)
	if err != nil {
		return Result{}, err
	}
	resp := res.Responses()
	return Result{
		Servers:      servers,
		Utilization:  res.Stations[0].Utilization,
		MeanResponse: stats.Mean(resp),
		P95:          stats.Quantile(resp, 0.95),
		P99:          stats.Quantile(resp, 0.99),
		Throughput:   res.Throughput,
	}, nil
}

// SizeFor finds the smallest server count in [1, maxServers] whose
// simulated p95 response time meets the target, evaluating each candidate
// with the given task count. It returns an error when even maxServers
// misses the target.
func (m *Model) SizeFor(targetP95 float64, maxServers, tasks int, r *rand.Rand) (Result, error) {
	if targetP95 <= 0 {
		return Result{}, fmt.Errorf("sqs: target must be positive, got %g", targetP95)
	}
	minServers := int(m.Rate*m.MeanService) + 1
	for k := minServers; k <= maxServers; k++ {
		res, err := m.Evaluate(k, tasks, r)
		if err != nil {
			continue // unstable at this k; try more servers
		}
		if res.P95 <= targetP95 {
			return res, nil
		}
	}
	return Result{}, fmt.Errorf("sqs: no configuration up to %d servers meets p95 <= %g", maxServers, targetP95)
}
