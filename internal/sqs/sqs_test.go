package sqs

import (
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/queueing"
	"dcmodel/internal/stats"
	"dcmodel/internal/workload"
)

func TestCharacterizerBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1200))
	c, err := NewCharacterizer(1000, r)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson arrivals at rate 10, exponential service mean 0.05.
	var now float64
	for i := 0; i < 20000; i++ {
		now += r.ExpFloat64() / 10
		if err := c.Observe(now, r.ExpFloat64()*0.05); err != nil {
			t.Fatal(err)
		}
	}
	if c.Observed() != 20000 {
		t.Errorf("observed = %d", c.Observed())
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate < 9 || m.Rate > 11 {
		t.Errorf("rate = %g, want ~10", m.Rate)
	}
	if m.MeanService < 0.045 || m.MeanService > 0.055 {
		t.Errorf("mean service = %g, want ~0.05", m.MeanService)
	}
	// The reservoir bounded memory at 1000 samples.
	if m.Interarrival.Params()[0] != 1000 || m.Service.Params()[0] != 1000 {
		t.Error("reservoir did not bound the sample")
	}
	// The sampled distribution still matches the true one.
	ks := stats.KSTest(m.Service.Sample(), stats.Exponential{Rate: 20})
	if ks.P < 0.001 {
		t.Errorf("sampled service distribution rejected: p=%g", ks.P)
	}
}

func TestCharacterizerErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1201))
	if _, err := NewCharacterizer(1, r); err == nil {
		t.Error("tiny budget should fail")
	}
	c, err := NewCharacterizer(10, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(5, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(4, 0.1); err == nil {
		t.Error("decreasing arrivals should fail")
	}
	if err := c.Observe(6, -1); err == nil {
		t.Error("negative service should fail")
	}
	if _, err := c.Model(); err == nil {
		t.Error("model with < 3 observations should fail")
	}
	if err := c.ObserveTrace(nil); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestEvaluateMatchesMMc(t *testing.T) {
	// With exponential inputs the SQS simulation must agree with the
	// analytic M/M/c model.
	r := rand.New(rand.NewSource(1202))
	c, err := NewCharacterizer(200000, r)
	if err != nil {
		t.Fatal(err)
	}
	var now float64
	for i := 0; i < 100000; i++ {
		now += r.ExpFloat64() / 20
		if err := c.Observe(now, r.ExpFloat64()*0.2); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(8, 50000, r)
	if err != nil {
		t.Fatal(err)
	}
	q, err := queueing.NewMMc(20, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := stats.RelError(q.MeanResponse(), res.MeanResponse); d > 0.1 {
		t.Errorf("mean response deviation %g (%g vs %g)", d, res.MeanResponse, q.MeanResponse())
	}
	if d := stats.RelError(q.Utilization(), res.Utilization); d > 0.06 {
		t.Errorf("utilization deviation %g", d)
	}
}

func TestEvaluateErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1203))
	c, _ := NewCharacterizer(100, r)
	var now float64
	for i := 0; i < 100; i++ {
		now += 0.1
		_ = c.Observe(now, 0.5)
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(0, 100, r); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := m.Evaluate(5, 5, r); err == nil {
		t.Error("tiny task count should fail")
	}
	// rho = 10 * 0.5 / 4 = 1.25 >= 1.
	if _, err := m.Evaluate(4, 1000, r); err == nil {
		t.Error("unstable configuration should fail")
	}
}

func TestSQSOnGFSTrace(t *testing.T) {
	cl, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cl.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 3000,
	}, rand.New(rand.NewSource(1204)))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1205))
	c, err := NewCharacterizer(5000, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveTrace(tr); err != nil {
		t.Fatal(err)
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate < 15 || m.Rate > 25 {
		t.Errorf("characterized rate = %g, want ~20", m.Rate)
	}
	// Service demand ~ request busy time (~14 ms mix mean).
	if m.MeanService < 0.005 || m.MeanService > 0.05 {
		t.Errorf("characterized service = %g", m.MeanService)
	}
	// DC-level evaluation scales to many servers cheaply.
	res, err := m.Evaluate(100, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > 0.05 {
		t.Errorf("100-server farm utilization = %g, want tiny", res.Utilization)
	}
	// More servers can only help response time.
	res1, err := m.Evaluate(1, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	if res1.MeanResponse < res.MeanResponse {
		t.Error("1 server should be slower than 100")
	}
}

func TestSizeFor(t *testing.T) {
	r := rand.New(rand.NewSource(1206))
	c, _ := NewCharacterizer(100000, r)
	var now float64
	for i := 0; i < 50000; i++ {
		now += r.ExpFloat64() / 50 // 50 tasks/s
		_ = c.Observe(now, r.ExpFloat64()*0.1)
	}
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	// rho = 5 total demand: need >= 6 servers; p95 target forces a few
	// more.
	res, err := m.SizeFor(0.3, 50, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers < 6 {
		t.Errorf("sized %d servers, must exceed the stability minimum 5", res.Servers)
	}
	if res.P95 > 0.3 {
		t.Errorf("sized configuration misses target: p95 = %g", res.P95)
	}
	// Impossible target.
	if _, err := m.SizeFor(1e-9, 10, 5000, r); err == nil {
		t.Error("impossible target should fail")
	}
	if _, err := m.SizeFor(0, 10, 5000, r); err == nil {
		t.Error("zero target should fail")
	}
}
