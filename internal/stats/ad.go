package stats

import (
	"math"
	"sort"
)

// The Anderson-Darling goodness-of-fit test: like Kolmogorov-Smirnov but
// weighted toward the distribution tails, where heavy-tailed workload
// features live. The p-value approximation is for the fully specified
// (case 0) null distribution.

// ADResult is the outcome of an Anderson-Darling test.
type ADResult struct {
	// Statistic is the A^2 statistic.
	Statistic float64
	// P is the approximate p-value (case 0).
	P float64
}

// ADTest tests the sample xs against the fully specified distribution d.
// Observations at the extreme CDF values are clamped to keep the logs
// finite.
func ADTest(xs []float64, d Dist) ADResult {
	n := len(xs)
	if n == 0 {
		return ADResult{P: 1}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	const eps = 1e-12
	var sum float64
	for i := 0; i < n; i++ {
		fi := clampProb(d.CDF(sorted[i]), eps)
		fr := clampProb(d.CDF(sorted[n-1-i]), eps)
		sum += float64(2*i+1) * (math.Log(fi) + math.Log(1-fr))
	}
	a2 := -float64(n) - sum/float64(n)
	return ADResult{Statistic: a2, P: adPValue(a2)}
}

func clampProb(p, eps float64) float64 {
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// adPValue returns 1 - adinf(a2), the asymptotic case-0 p-value using the
// Marsaglia & Marsaglia (2004) approximation of the Anderson-Darling
// distribution.
func adPValue(a2 float64) float64 {
	if a2 <= 0 {
		return 1
	}
	p := 1 - adinf(a2)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// adinf approximates P(A^2 <= z) for the asymptotic Anderson-Darling
// distribution (Marsaglia & Marsaglia 2004).
func adinf(z float64) float64 {
	switch {
	case z <= 0:
		return 0
	case z < 2:
		return math.Exp(-1.2337141/z) / math.Sqrt(z) *
			(2.00012 + (0.247105-(0.0649821-(0.0347962-(0.011672-0.00168691*z)*z)*z)*z)*z)
	default:
		return math.Exp(-math.Exp(1.0776 - (2.30695-(0.43424-(0.082433-(0.008056-0.0003146*z)*z)*z)*z)*z))
	}
}
