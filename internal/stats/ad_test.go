package stats

import (
	"math/rand"
	"testing"
)

func TestADTestAcceptsTrueDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(150))
	var rejections int
	const trials = 40
	for i := 0; i < trials; i++ {
		xs := Sample(Exponential{Rate: 2}, 500, r)
		if ADTest(xs, Exponential{Rate: 2}).P < 0.05 {
			rejections++
		}
	}
	// At level 0.05 roughly 5% of true-null trials reject.
	if rejections > trials/4 {
		t.Errorf("AD rejected true distribution %d/%d times", rejections, trials)
	}
}

func TestADTestRejectsWrongDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	xs := Sample(LogNormal{Mu: 0, Sigma: 1}, 1000, r)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	res := ADTest(xs, fit)
	if res.P > 0.01 {
		t.Errorf("AD failed to reject exponential fit of lognormal data: p=%g", res.P)
	}
}

func TestADMoreTailSensitiveThanKS(t *testing.T) {
	// A distribution that matches in the body but differs in the tail:
	// AD should produce a larger (more significant) statistic relative to
	// its null than KS.
	r := rand.New(rand.NewSource(152))
	// Truncate an exponential's tail: same body, no tail mass.
	truncated := make([]float64, 0, 2000)
	for len(truncated) < 2000 {
		x := Sample(Exponential{Rate: 1}, 1, r)[0]
		if x < 2.5 { // chop the top ~8%
			truncated = append(truncated, x)
		}
	}
	ad := ADTest(truncated, Exponential{Rate: 1})
	ks := KSTest(truncated, Exponential{Rate: 1})
	if ad.P >= 0.01 {
		t.Errorf("AD should strongly reject the truncated tail: p=%g", ad.P)
	}
	// Both reject here, but AD must not be weaker.
	if ad.P > ks.P {
		t.Errorf("AD p=%g weaker than KS p=%g on a tail defect", ad.P, ks.P)
	}
}

func TestADEdgeCases(t *testing.T) {
	if res := ADTest(nil, Exponential{Rate: 1}); res.P != 1 {
		t.Errorf("empty AD p = %g", res.P)
	}
	// Values outside the support must not produce NaN/Inf.
	res := ADTest([]float64{-5, 0, 1e308}, Exponential{Rate: 1})
	if res.Statistic <= 0 {
		t.Errorf("degenerate sample statistic = %g", res.Statistic)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("p out of range: %g", res.P)
	}
	if adPValue(-1) != 1 || adPValue(100) != 0 {
		t.Error("p-value endpoints wrong")
	}
}
