package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias is a Walker/Vose alias table: a categorical sampler over weights
// w_0..w_{n-1} whose draws are O(1) and allocation-free regardless of n.
//
// The table is built once (at model-training or construction time) and is
// read-only afterwards, so one frozen Alias may be shared by any number of
// concurrent samplers as long as each brings its own *rand.Rand — the same
// contract every trained model in this repository follows.
//
// A draw consumes exactly one uniform variate — even from a one-category
// table — like the linear-scan and binary-search samplers it replaces: the
// variate's integer part (after scaling by n) picks a slot and its
// fractional part plays the biased coin against the slot's acceptance
// probability. Same seed therefore implies the same number of RNG calls
// per draw at any table size, which keeps every model's draw sequence
// aligned with its pre-alias realization.
type Alias struct {
	// prob[i] is the probability of accepting slot i's own index; on
	// rejection the draw returns alias[i].
	prob  []float64
	alias []int32
}

// NewAlias builds the alias table for the given weights using Vose's O(n)
// construction. Weights must be non-negative and finite with a positive
// sum; individual zero weights are fine (their index is never drawn). The
// construction is deterministic: equal weight slices yield identical
// tables.
func NewAlias(weights []float64) (Alias, error) {
	n := len(weights)
	if n == 0 {
		return Alias{}, fmt.Errorf("stats: alias table needs at least one weight")
	}
	if n > math.MaxInt32 {
		return Alias{}, fmt.Errorf("stats: alias table over %d slots not supported", math.MaxInt32)
	}
	a := Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scratch := aliasScratch{
		scaled: make([]float64, n),
		small:  make([]int32, 0, n),
		large:  make([]int32, 0, n),
	}
	if err := buildAliasInto(a.prob, a.alias, weights, &scratch); err != nil {
		return Alias{}, err
	}
	return a, nil
}

// aliasScratch holds the reusable worklists of the Vose construction, so
// building many equal-width tables (an AliasMatrix) allocates them once.
type aliasScratch struct {
	scaled       []float64
	small, large []int32
}

// buildAliasInto runs Vose's construction for weights into prob and alias
// (all length len(weights)). The construction is deterministic: the
// worklists are index-ordered stacks.
func buildAliasInto(prob []float64, alias []int32, weights []float64, sc *aliasScratch) error {
	n := len(weights)
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("stats: alias weight %d is %g, want finite and non-negative", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("stats: alias weights sum to %g, want positive", sum)
	}
	// Scale weights to mean 1 and split into deficit/surplus worklists.
	scaled := sc.scaled[:n]
	scale := float64(n) / sum
	for i, w := range weights {
		scaled[i] = w * scale
	}
	small := sc.small[:0]
	large := sc.large[:0]
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers on either list are exactly 1 up to rounding error: accept
	// their own index unconditionally.
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	return nil
}

// MustAlias is NewAlias for weights known valid by construction (e.g. the
// normalized rows of a trained transition matrix); it panics on error.
func MustAlias(weights []float64) Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the number of categories (0 for an unbuilt zero table).
func (a *Alias) N() int { return len(a.prob) }

// Empty reports whether the table has not been built.
func (a *Alias) Empty() bool { return len(a.prob) == 0 }

// Sample maps one uniform variate u in [0, 1) to a category: O(1), no
// allocation, pure (the same u always yields the same category).
func (a *Alias) Sample(u float64) int {
	prob := a.prob
	x := u * float64(len(prob))
	i := int(x)
	if uint(i) >= uint(len(prob)) { // u == 1 or rounding at the boundary
		i = len(prob) - 1
	}
	if x-float64(i) < prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Draw samples a category using one variate from r.
func (a *Alias) Draw(r *rand.Rand) int {
	return a.Sample(r.Float64())
}

// SampleN fills out with len(out) draws, consuming exactly one variate per
// draw in the same order as len(out) Draw calls — same seed, byte-identical
// categories. Batching hoists the table fields out of the per-draw loop, so
// bulk synthesis pays the method-call and bounds-check overhead once.
func (a *Alias) SampleN(r *rand.Rand, out []int) {
	prob, alias := a.prob, a.alias
	n := float64(len(prob))
	for k := range out {
		x := r.Float64() * n
		i := int(x)
		if uint(i) >= uint(len(prob)) {
			i = len(prob) - 1
		}
		if x-float64(i) < prob[i] {
			out[k] = i
		} else {
			out[k] = int(alias[i])
		}
	}
}

// AliasMatrix is a bank of equal-width alias tables packed into two flat
// arrays — the frozen form of a row-stochastic transition matrix. Row draws
// index straight into the packed arrays, avoiding the per-row slice-header
// hop a []Alias would pay on every Markov step, and keeping neighboring
// rows on shared cache lines.
type AliasMatrix struct {
	rows, cols int
	prob       []float64
	alias      []int32
}

// NewAliasMatrix builds one alias table per row of the row-major rows×cols
// weights matrix (data exactly rows*cols long, as in Matrix.Data).
func NewAliasMatrix(data []float64, rows, cols int) (AliasMatrix, error) {
	if rows < 0 || cols < 1 || len(data) != rows*cols {
		return AliasMatrix{}, fmt.Errorf("stats: alias matrix wants %d x %d weights, got %d", rows, cols, len(data))
	}
	if cols > math.MaxInt32 {
		return AliasMatrix{}, fmt.Errorf("stats: alias table over %d slots not supported", math.MaxInt32)
	}
	m := AliasMatrix{
		rows:  rows,
		cols:  cols,
		prob:  make([]float64, rows*cols),
		alias: make([]int32, rows*cols),
	}
	scratch := aliasScratch{
		scaled: make([]float64, cols),
		small:  make([]int32, 0, cols),
		large:  make([]int32, 0, cols),
	}
	for i := 0; i < rows; i++ {
		lo, hi := i*cols, (i+1)*cols
		if err := buildAliasInto(m.prob[lo:hi], m.alias[lo:hi], data[lo:hi], &scratch); err != nil {
			return AliasMatrix{}, fmt.Errorf("stats: alias matrix row %d: %w", i, err)
		}
	}
	return m, nil
}

// MustAliasMatrix is NewAliasMatrix for weights known valid by construction
// (e.g. a trained transition matrix); it panics on error.
func MustAliasMatrix(data []float64, rows, cols int) AliasMatrix {
	m, err := NewAliasMatrix(data, rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of tables in the bank (0 when unbuilt).
func (m *AliasMatrix) Rows() int { return m.rows }

// Sample maps one uniform variate to a category of the given row.
func (m *AliasMatrix) Sample(row int, u float64) int {
	cols := m.cols
	base := row * cols
	x := u * float64(cols)
	i := int(x)
	if uint(i) >= uint(cols) { // u == 1 or rounding at the boundary
		i = cols - 1
	}
	if x-float64(i) < m.prob[base+i] {
		return i
	}
	return int(m.alias[base+i])
}

// Draw samples a category of the given row using one variate from r.
func (m *AliasMatrix) Draw(row int, r *rand.Rand) int {
	return m.Sample(row, r.Float64())
}

// SampleRowN fills out with len(out) draws from one row, one variate per
// draw, byte-identical to len(out) Draw(row, r) calls.
func (m *AliasMatrix) SampleRowN(row int, r *rand.Rand, out []int) {
	cols := m.cols
	base := row * cols
	prob, alias := m.prob[base:base+cols], m.alias[base:base+cols]
	n := float64(cols)
	for k := range out {
		x := r.Float64() * n
		i := int(x)
		if uint(i) >= uint(cols) {
			i = cols - 1
		}
		if x-float64(i) < prob[i] {
			out[k] = i
		} else {
			out[k] = int(alias[i])
		}
	}
}

// WalkN chains len(out) row draws — each draw's category selects the next
// row — writing every visited state to out and returning the final state.
// It consumes one variate per step in the same order as the equivalent
// Draw(state, r) loop, so a frozen Markov chain batched through WalkN stays
// byte-identical to its scalar realization. The matrix must be square
// (rows == cols), as every frozen transition matrix is.
func (m *AliasMatrix) WalkN(state int, r *rand.Rand, out []int) int {
	cols := m.cols
	prob, alias := m.prob, m.alias
	n := float64(cols)
	for k := range out {
		base := state * cols
		x := r.Float64() * n
		i := int(x)
		if uint(i) >= uint(cols) {
			i = cols - 1
		}
		if x-float64(i) < prob[base+i] {
			state = i
		} else {
			state = int(alias[base+i])
		}
		out[k] = state
	}
	return state
}
