package stats

import (
	"math/rand"
	"testing"
)

// The batch samplers must consume one variate per draw in scalar order:
// same seed, byte-identical output. These pins are what let the synthesis
// batch path claim equivalence with the goldens recorded under Draw.

func TestAliasSampleNMatchesScalar(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(i%5) + 0.25
		}
		a, err := NewAlias(w)
		if err != nil {
			t.Fatal(err)
		}
		const draws = 4097
		r1 := rand.New(rand.NewSource(42))
		want := make([]int, draws)
		for i := range want {
			want[i] = a.Draw(r1)
		}
		r2 := rand.New(rand.NewSource(42))
		got := make([]int, draws)
		a.SampleN(r2, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d draw %d: SampleN %d, scalar %d", n, i, got[i], want[i])
			}
		}
		// The RNG streams must be in lockstep afterwards too.
		if r1.Float64() != r2.Float64() {
			t.Fatalf("n=%d: RNG streams diverged after the batch", n)
		}
	}
}

func TestAliasMatrixSampleRowNMatchesScalar(t *testing.T) {
	const rows, cols = 6, 9
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(i%4) + 0.5
	}
	m, err := NewAliasMatrix(data, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < rows; row++ {
		r1 := rand.New(rand.NewSource(int64(row)))
		want := make([]int, 513)
		for i := range want {
			want[i] = m.Draw(row, r1)
		}
		r2 := rand.New(rand.NewSource(int64(row)))
		got := make([]int, 513)
		m.SampleRowN(row, r2, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d draw %d: SampleRowN %d, scalar %d", row, i, got[i], want[i])
			}
		}
	}
}

func TestAliasMatrixWalkNMatchesScalar(t *testing.T) {
	const n = 11
	data := make([]float64, n*n)
	for i := range data {
		data[i] = float64(i%3) + 0.125
	}
	m, err := NewAliasMatrix(data, n, n)
	if err != nil {
		t.Fatal(err)
	}
	r1 := rand.New(rand.NewSource(7))
	state := 3
	want := make([]int, 2048)
	for i := range want {
		state = m.Draw(state, r1)
		want[i] = state
	}
	finalScalar := state

	r2 := rand.New(rand.NewSource(7))
	got := make([]int, 2048)
	finalBatch := m.WalkN(3, r2, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: WalkN %d, scalar %d", i, got[i], want[i])
		}
	}
	if finalBatch != finalScalar {
		t.Fatalf("final state: WalkN %d, scalar %d", finalBatch, finalScalar)
	}
	if r1.Float64() != r2.Float64() {
		t.Fatal("RNG streams diverged after the walk")
	}

	// Zero-length batches consume nothing and return the input state.
	r3 := rand.New(rand.NewSource(9))
	if s := m.WalkN(5, r3, nil); s != 5 {
		t.Fatalf("empty walk moved the state to %d", s)
	}
	if r3.Float64() != rand.New(rand.NewSource(9)).Float64() {
		t.Fatal("empty walk consumed a variate")
	}
}
