package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// aliasPMF reconstructs the exact category probabilities encoded by the
// table: slot i contributes prob[i]/n to category i and (1-prob[i])/n to
// category alias[i].
func aliasPMF(a Alias) []float64 {
	n := a.N()
	pmf := make([]float64, n)
	for i := 0; i < n; i++ {
		pmf[i] += a.prob[i] / float64(n)
		pmf[a.alias[i]] += (1 - a.prob[i]) / float64(n)
	}
	return pmf
}

// TestAliasExactReconstruction checks — without any sampling noise — that
// the table encodes exactly the normalized input weights.
func TestAliasExactReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		weights := make([]float64, n)
		var sum float64
		for i := range weights {
			if r.Float64() < 0.2 {
				weights[i] = 0 // exercise zero-weight slots
			} else {
				weights[i] = r.ExpFloat64()
			}
			sum += weights[i]
		}
		if sum == 0 {
			weights[0] = 1
			sum = 1
		}
		a, err := NewAlias(weights)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pmf := aliasPMF(a)
		for i, w := range weights {
			want := w / sum
			if math.Abs(pmf[i]-want) > 1e-12 {
				t.Fatalf("trial %d: category %d has mass %g, want %g", trial, i, pmf[i], want)
			}
		}
	}
}

// TestAliasChiSquare draws from a skewed table and performs a chi-square
// goodness-of-fit test against the exact weights.
func TestAliasChiSquare(t *testing.T) {
	weights := []float64{0.5, 0.2, 0.15, 0.1, 0.04, 0.01}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	r := rand.New(rand.NewSource(7))
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	var chi2 float64
	for i, w := range weights {
		expected := w * draws
		d := counts[i] - expected
		chi2 += d * d / expected
	}
	// 5 degrees of freedom; critical value at alpha = 0.001 is 20.52. A
	// correct sampler fails this about once per thousand seeds; the seed is
	// fixed, so the test is deterministic.
	if chi2 > 20.52 {
		t.Fatalf("chi-square %g exceeds 20.52: draws do not match weights %v (counts %v)", chi2, weights, counts)
	}
}

func TestAliasDegenerate(t *testing.T) {
	// One-weight table: every draw returns index 0.
	one, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if got := one.Draw(r); got != 0 {
			t.Fatalf("one-weight table drew %d", got)
		}
	}
	// Single non-zero weight among zeros: only that index is drawn, ever.
	spike, err := NewAlias([]float64{0, 0, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if got := spike.Draw(r); got != 3 {
			t.Fatalf("spike table drew %d, want 3", got)
		}
	}
	for u := 0.0; u < 1; u += 1e-3 {
		if got := spike.Sample(u); got != 3 {
			t.Fatalf("spike.Sample(%g) = %d, want 3", u, got)
		}
	}
	// Boundary variate u -> 1 must stay in range.
	if got := one.Sample(math.Nextafter(1, 0)); got != 0 {
		t.Fatalf("Sample(1-eps) = %d", got)
	}
}

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -0.5},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, weights := range cases {
		if _, err := NewAlias(weights); err == nil {
			t.Errorf("NewAlias(%v) succeeded, want error", weights)
		}
	}
}

// TestAliasDeterministicBuild demands bit-identical tables — and therefore
// bit-identical draw sequences — across repeated builds from equal weights.
func TestAliasDeterministicBuild(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	weights := make([]float64, 97)
	for i := range weights {
		weights[i] = r.ExpFloat64()
	}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated builds from equal weights produced different tables")
	}
	for u := 0.0; u < 1; u += 1e-4 {
		if a.Sample(u) != b.Sample(u) {
			t.Fatalf("tables disagree at u=%g", u)
		}
	}
}

// TestAliasConcurrentDraws stress-tests one frozen table under concurrent
// draws (run with -race): the table is read-only, so goroutines sharing it
// must never conflict as long as each has its own rand source.
func TestAliasConcurrentDraws(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const draws = 50000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < draws; i++ {
				if got := a.Draw(r); got < 0 || got >= len(weights) {
					errs <- errOutOfRange(got)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errOutOfRange int

func (e errOutOfRange) Error() string { return "alias draw out of range" }

// TestAliasMatrixMatchesPerRowTables demands that a packed matrix samples
// exactly like independent per-row Alias tables built from the same rows.
func TestAliasMatrixMatchesPerRowTables(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const rows, cols = 7, 13
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = r.ExpFloat64()
	}
	m, err := NewAliasMatrix(data, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != rows {
		t.Fatalf("Rows() = %d, want %d", m.Rows(), rows)
	}
	for i := 0; i < rows; i++ {
		row, err := NewAlias(data[i*cols : (i+1)*cols])
		if err != nil {
			t.Fatal(err)
		}
		for u := 0.0; u < 1; u += 1e-3 {
			if got, want := m.Sample(i, u), row.Sample(u); got != want {
				t.Fatalf("row %d u=%g: matrix drew %d, per-row table drew %d", i, u, got, want)
			}
		}
	}
}

func TestAliasMatrixErrors(t *testing.T) {
	if _, err := NewAliasMatrix([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewAliasMatrix(nil, 1, 0); err == nil {
		t.Error("zero-width rows accepted")
	}
	if _, err := NewAliasMatrix([]float64{1, 0, 0, 0}, 2, 2); err == nil {
		t.Error("zero-sum row accepted")
	}
	var zero AliasMatrix
	if zero.Rows() != 0 {
		t.Errorf("zero matrix Rows() = %d", zero.Rows())
	}
}
