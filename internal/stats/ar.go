package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Autoregressive modeling: the second phase of Li's two-phase grid-workload
// model "generates autocorrelations that match the real data to create
// synthetic workloads". An AR(p) process fitted by Yule-Walker reproduces a
// series' short-range autocorrelation structure; combined with a marginal
// transform it yields synthetic series with both the right distribution and
// the right correlations.

// ARModel is a fitted autoregressive model of order p:
// x_t = Mean + sum_i Coef[i] (x_{t-i} - Mean) + e_t, e_t ~ N(0, NoiseVar).
type ARModel struct {
	// Coef holds the AR coefficients, Coef[0] being the lag-1 weight.
	Coef []float64
	// Mean is the process mean.
	Mean float64
	// NoiseVar is the innovation variance.
	NoiseVar float64
}

// FitAR fits an AR(p) model to xs by solving the Yule-Walker equations.
func FitAR(xs []float64, p int) (*ARModel, error) {
	if p < 1 {
		return nil, fmt.Errorf("stats: AR order must be >= 1, got %d", p)
	}
	if len(xs) < 2*p+2 {
		return nil, ErrShortSample
	}
	acf := ACF(xs, p)
	variance := PopVariance(xs)
	if variance == 0 {
		return nil, fmt.Errorf("stats: AR fit needs non-constant data")
	}
	// Toeplitz system R a = r, R[i][j] = acf(|i-j|), r[i] = acf(i+1).
	m := NewMatrix(p, p)
	r := make([]float64, p)
	for i := 0; i < p; i++ {
		r[i] = acf[i+1]
		for j := 0; j < p; j++ {
			lag := i - j
			if lag < 0 {
				lag = -lag
			}
			m.Set(i, j, acf[lag])
		}
	}
	coef, err := SolveLinear(m, r)
	if err != nil {
		return nil, fmt.Errorf("stats: yule-walker: %w", err)
	}
	// Innovation variance: sigma^2 = var * (1 - sum a_i rho_i).
	noise := 1.0
	for i := 0; i < p; i++ {
		noise -= coef[i] * acf[i+1]
	}
	noiseVar := variance * noise
	if noiseVar < 0 {
		noiseVar = 0
	}
	return &ARModel{Coef: coef, Mean: Mean(xs), NoiseVar: noiseVar}, nil
}

// Order returns the model order p.
func (m *ARModel) Order() int { return len(m.Coef) }

// Simulate generates n values from the model after a burn-in of 10*p
// steps.
func (m *ARModel) Simulate(n int, r *rand.Rand) []float64 {
	p := m.Order()
	burn := 10 * p
	state := make([]float64, p) // deviations from mean, newest first
	sd := math.Sqrt(m.NoiseVar)
	out := make([]float64, 0, n)
	for t := 0; t < burn+n; t++ {
		var x float64
		for i, a := range m.Coef {
			x += a * state[i]
		}
		x += sd * r.NormFloat64()
		copy(state[1:], state[:p-1])
		state[0] = x
		if t >= burn {
			out = append(out, m.Mean+x)
		}
	}
	return out
}

// TheoreticalACF returns the model-implied autocorrelations at lags
// 0..maxLag via the recursive extension of the Yule-Walker equations.
func (m *ARModel) TheoreticalACF(maxLag int) []float64 {
	p := m.Order()
	// Solve for the first p autocorrelations from the fitted
	// coefficients, then extend by rho_k = sum a_i rho_{k-i}.
	// For simplicity (and because FitAR derives coefficients from the
	// sample ACF), seed with a long simulation-free fixed-point
	// iteration.
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	// Fixed-point iteration for rho_1..rho_p.
	work := make([]float64, p+1)
	work[0] = 1
	for iter := 0; iter < 500; iter++ {
		var maxDelta float64
		for k := 1; k <= p; k++ {
			var v float64
			for i, a := range m.Coef {
				lag := k - (i + 1)
				if lag < 0 {
					lag = -lag
				}
				v += a * work[lag]
			}
			if d := math.Abs(v - work[k]); d > maxDelta {
				maxDelta = d
			}
			work[k] = v
		}
		if maxDelta < 1e-12 {
			break
		}
	}
	for k := 1; k <= maxLag; k++ {
		if k <= p {
			rho[k] = work[k]
			continue
		}
		var v float64
		for i, a := range m.Coef {
			v += a * rho[k-(i+1)]
		}
		rho[k] = v
	}
	return rho
}
