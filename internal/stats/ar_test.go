package stats

import (
	"math"
	"math/rand"
	"testing"
)

// arSeries generates an AR(2) series with known coefficients.
func arSeries(n int, a1, a2, mean float64, r *rand.Rand) []float64 {
	xs := make([]float64, n)
	var p1, p2 float64
	for i := range xs {
		x := a1*p1 + a2*p2 + r.NormFloat64()
		p2, p1 = p1, x
		xs[i] = mean + x
	}
	return xs
}

func TestFitARRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	xs := arSeries(100000, 0.6, 0.2, 5, r)
	m, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m.Coef[0], 0.6, 0.02, "a1")
	approx(t, m.Coef[1], 0.2, 0.02, "a2")
	approx(t, m.Mean, 5, 0.15, "mean")
	approx(t, m.NoiseVar, 1, 0.05, "noise variance")
	if m.Order() != 2 {
		t.Errorf("order = %d", m.Order())
	}
}

func TestARSimulateMatchesACF(t *testing.T) {
	// Li's requirement: the synthetic series' autocorrelations match the
	// original's.
	r := rand.New(rand.NewSource(111))
	orig := arSeries(50000, 0.7, 0, 10, r)
	m, err := FitAR(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	synth := m.Simulate(50000, r)
	if len(synth) != 50000 {
		t.Fatalf("synth length %d", len(synth))
	}
	origACF := ACF(orig, 5)
	synthACF := ACF(synth, 5)
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(origACF[lag]-synthACF[lag]) > 0.03 {
			t.Errorf("lag %d: orig %g vs synth %g", lag, origACF[lag], synthACF[lag])
		}
	}
	approx(t, Mean(synth), Mean(orig), 0.2, "synthetic mean")
	approx(t, Variance(synth), Variance(orig), 0.15*Variance(orig), "synthetic variance")
}

func TestARTheoreticalACF(t *testing.T) {
	// AR(1) with coefficient a has ACF(k) = a^k.
	m := &ARModel{Coef: []float64{0.8}, Mean: 0, NoiseVar: 1}
	rho := m.TheoreticalACF(5)
	for k := 0; k <= 5; k++ {
		approx(t, rho[k], math.Pow(0.8, float64(k)), 1e-9, "AR(1) theoretical ACF")
	}
	// AR(2): rho_1 = a1/(1-a2).
	m2 := &ARModel{Coef: []float64{0.5, 0.3}, Mean: 0, NoiseVar: 1}
	rho2 := m2.TheoreticalACF(3)
	approx(t, rho2[1], 0.5/(1-0.3), 1e-9, "AR(2) rho1")
	approx(t, rho2[2], 0.5*rho2[1]+0.3, 1e-9, "AR(2) rho2")
}

func TestFitARErrors(t *testing.T) {
	if _, err := FitAR([]float64{1, 2, 3}, 0); err == nil {
		t.Error("order 0 should fail")
	}
	if _, err := FitAR([]float64{1, 2, 3}, 5); err == nil {
		t.Error("short sample should fail")
	}
	if _, err := FitAR([]float64{2, 2, 2, 2, 2, 2, 2, 2}, 1); err == nil {
		t.Error("constant series should fail")
	}
}

func TestVUListBasics(t *testing.T) {
	data := [][]float64{
		{1, 10}, {1.1, 11}, {0.9, 9},
		{5, 50}, {5.2, 52},
	}
	v, err := NewVUList(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Total() != 5 {
		t.Errorf("total = %d", v.Total())
	}
	if v.Dims != 2 {
		t.Errorf("dims = %d", v.Dims)
	}
	if v.Cells() < 2 {
		t.Errorf("cells = %d, want the two clusters separated", v.Cells())
	}
	// The cluster around (1, 10) holds 3/5 of the mass.
	approx(t, v.Prob([]float64{1, 10}), 0.6, 1e-12, "cluster mass")
	if p := v.Prob([]float64{3, 30}); p != 0 {
		t.Errorf("empty cell mass = %g", p)
	}
}

func TestVUListErrors(t *testing.T) {
	if _, err := NewVUList(nil, 4); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := NewVUList([][]float64{{1}}, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewVUList([][]float64{{}}, 4); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := NewVUList([][]float64{{1, 2}, {3}}, 4); err == nil {
		t.Error("ragged data should fail")
	}
	v, err := NewVUList([][]float64{{1, 2}, {3, 4}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.MarginalMean(5); err == nil {
		t.Error("bad dimension should fail")
	}
}

func TestVUListPreservesCorrelation(t *testing.T) {
	// The whole point of VU-lists: jointly binned features keep their
	// correlation; independent histograms would not.
	r := rand.New(rand.NewSource(112))
	n := 5000
	data := make([][]float64, n)
	for i := range data {
		base := r.NormFloat64() * 10
		data[i] = []float64{base, 3*base + r.NormFloat64()}
	}
	v, err := NewVUList(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for i := 0; i < 5000; i++ {
		s := v.Sample(r)
		xs = append(xs, s[0])
		ys = append(ys, s[1])
	}
	if c := Correlation(xs, ys); c < 0.95 {
		t.Errorf("sampled correlation = %g, want ~1", c)
	}
	m0, err := v.MarginalMean(0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m0, 0, 1.0, "marginal mean feature 0")
}

func TestVUListSampleWithinRange(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	data := [][]float64{{0, 0}, {1, 10}, {2, 20}, {3, 30}}
	v, err := NewVUList(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s := v.Sample(r)
		if s[0] < 0 || s[0] > 3 || s[1] < 0 || s[1] > 30 {
			t.Fatalf("sample %v outside data range", s)
		}
	}
}
