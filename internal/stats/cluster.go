package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Clustering: k-means and diagonal-covariance Gaussian-mixture EM. Li's
// grid-workload model uses "Model-Based Clustering in order to perform the
// distribution fitting" as its first phase; Abrahao et al. categorize CPU
// utilization patterns similarly. KOOZA uses clustering to discretize
// continuous features (e.g. CPU utilization levels) into Markov states.

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	// Centroids has one row per cluster.
	Centroids *Matrix
	// Assign maps each observation to its cluster index.
	Assign []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iters is the number of iterations performed.
	Iters int
}

// KMeans clusters the rows of data into k clusters using Lloyd's algorithm
// with k-means++ seeding. r drives the seeding; maxIter bounds iteration.
func KMeans(data *Matrix, k int, r *rand.Rand, maxIter int) (KMeansResult, error) {
	n, d := data.Rows, data.Cols
	if k < 1 {
		return KMeansResult{}, fmt.Errorf("stats: kmeans k=%d must be positive", k)
	}
	if n < k {
		return KMeansResult{}, fmt.Errorf("stats: kmeans needs >= k=%d observations, got %d", k, n)
	}
	if maxIter < 1 {
		maxIter = 100
	}
	centroids := kmeansppSeed(data, k, r)
	assign := make([]int, n)
	var inertia float64
	iters := 0
	for ; iters < maxIter; iters++ {
		// Assignment step.
		changed := false
		inertia = 0
		for i := 0; i < n; i++ {
			row := data.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dd := sqDist(row, centroids.Row(c))
				if dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestD
		}
		if !changed && iters > 0 {
			break
		}
		// Update step.
		counts := make([]int, k)
		next := NewMatrix(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := data.Row(i)
			cr := next.Row(c)
			for j, x := range row {
				cr[j] += x
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dd := sqDist(data.Row(i), centroids.Row(assign[i]))
					if dd > farD {
						far, farD = i, dd
					}
				}
				copy(next.Row(c), data.Row(far))
				counts[c] = 1
				continue
			}
			cr := next.Row(c)
			for j := range cr {
				cr[j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	return KMeansResult{Centroids: centroids, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

func kmeansppSeed(data *Matrix, k int, r *rand.Rand) *Matrix {
	n, d := data.Rows, data.Cols
	centroids := NewMatrix(k, d)
	first := r.Intn(n)
	copy(centroids.Row(0), data.Row(first))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(data.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		total := Sum(dist)
		var idx int
		if total <= 0 {
			idx = r.Intn(n)
		} else {
			target := r.Float64() * total
			var cum float64
			for i, dd := range dist {
				cum += dd
				if cum >= target {
					idx = i
					break
				}
			}
		}
		copy(centroids.Row(c), data.Row(idx))
		for i := range dist {
			if dd := sqDist(data.Row(i), centroids.Row(c)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// GMM is a diagonal-covariance Gaussian mixture model fitted by EM.
type GMM struct {
	// Weights are the mixture weights (sum to 1).
	Weights []float64
	// Means has one row per component.
	Means *Matrix
	// Vars has one row of per-feature variances per component.
	Vars *Matrix
	// LogLik is the final per-observation average log-likelihood.
	LogLik float64
	// Iters is the number of EM iterations performed.
	Iters int
}

// FitGMM fits a k-component diagonal GMM to the rows of data with EM,
// initialized from k-means.
func FitGMM(data *Matrix, k int, r *rand.Rand, maxIter int) (*GMM, error) {
	n, d := data.Rows, data.Cols
	km, err := KMeans(data, k, r, 50)
	if err != nil {
		return nil, err
	}
	if maxIter < 1 {
		maxIter = 100
	}
	g := &GMM{
		Weights: make([]float64, k),
		Means:   km.Centroids.Clone(),
		Vars:    NewMatrix(k, d),
	}
	counts := make([]int, k)
	for i, c := range km.Assign {
		counts[c]++
		row := data.Row(i)
		vr := g.Vars.Row(c)
		mr := g.Means.Row(c)
		for j, x := range row {
			dv := x - mr[j]
			vr[j] += dv * dv
		}
	}
	const varFloor = 1e-9
	for c := 0; c < k; c++ {
		g.Weights[c] = float64(counts[c]) / float64(n)
		vr := g.Vars.Row(c)
		for j := range vr {
			if counts[c] > 0 {
				vr[j] /= float64(counts[c])
			}
			if vr[j] < varFloor {
				vr[j] = varFloor
			}
		}
	}
	resp := NewMatrix(n, k)
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		g.Iters = iter + 1
		// E step.
		var ll float64
		for i := 0; i < n; i++ {
			row := data.Row(i)
			logs := make([]float64, k)
			for c := 0; c < k; c++ {
				logs[c] = math.Log(g.Weights[c]+1e-300) + g.logGaussian(c, row)
			}
			lse := logSumExp(logs)
			ll += lse
			rrow := resp.Row(i)
			for c := 0; c < k; c++ {
				rrow[c] = math.Exp(logs[c] - lse)
			}
		}
		g.LogLik = ll / float64(n)
		// M step.
		for c := 0; c < k; c++ {
			var nc float64
			mr := g.Means.Row(c)
			vr := g.Vars.Row(c)
			for j := range mr {
				mr[j], vr[j] = 0, 0
			}
			for i := 0; i < n; i++ {
				w := resp.At(i, c)
				nc += w
				row := data.Row(i)
				for j, x := range row {
					mr[j] += w * x
				}
			}
			if nc < 1e-12 {
				nc = 1e-12
			}
			for j := range mr {
				mr[j] /= nc
			}
			for i := 0; i < n; i++ {
				w := resp.At(i, c)
				row := data.Row(i)
				for j, x := range row {
					dv := x - mr[j]
					vr[j] += w * dv * dv
				}
			}
			for j := range vr {
				vr[j] /= nc
				if vr[j] < varFloor {
					vr[j] = varFloor
				}
			}
			g.Weights[c] = nc / float64(n)
		}
		if g.LogLik-prevLL < 1e-8 && iter > 0 {
			break
		}
		prevLL = g.LogLik
	}
	return g, nil
}

// logGaussian returns the log density of component c at x.
func (g *GMM) logGaussian(c int, x []float64) float64 {
	mr := g.Means.Row(c)
	vr := g.Vars.Row(c)
	s := -0.5 * float64(len(x)) * math.Log(2*math.Pi)
	for j, xj := range x {
		s -= 0.5 * math.Log(vr[j])
		d := xj - mr[j]
		s -= d * d / (2 * vr[j])
	}
	return s
}

// Predict returns the most likely component for the observation x.
func (g *GMM) Predict(x []float64) int {
	best, bestL := 0, math.Inf(-1)
	for c := range g.Weights {
		l := math.Log(g.Weights[c]+1e-300) + g.logGaussian(c, x)
		if l > bestL {
			best, bestL = c, l
		}
	}
	return best
}

// Sample draws one observation from the mixture.
func (g *GMM) Sample(r *rand.Rand) []float64 {
	u := r.Float64()
	var cum float64
	c := len(g.Weights) - 1
	for i, w := range g.Weights {
		cum += w
		if u <= cum {
			c = i
			break
		}
	}
	mr := g.Means.Row(c)
	vr := g.Vars.Row(c)
	x := make([]float64, len(mr))
	for j := range x {
		x[j] = mr[j] + math.Sqrt(vr[j])*r.NormFloat64()
	}
	return x
}

func logSumExp(xs []float64) float64 {
	m := Max(xs)
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}
