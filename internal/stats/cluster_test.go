package stats

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs generates n points around three well-separated 2D centers.
func threeBlobs(n int, r *rand.Rand) (*Matrix, []int) {
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	m := NewMatrix(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		truth[i] = c
		m.Set(i, 0, centers[c][0]+r.NormFloat64())
		m.Set(i, 1, centers[c][1]+r.NormFloat64())
	}
	return m, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	data, truth := threeBlobs(600, r)
	res, err := KMeans(data, 3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Clusters are a permutation of the truth: check purity.
	var confusion [3][3]int
	for i, c := range res.Assign {
		confusion[truth[i]][c]++
	}
	var correct int
	for tr := 0; tr < 3; tr++ {
		best := 0
		for c := 0; c < 3; c++ {
			if confusion[tr][c] > best {
				best = confusion[tr][c]
			}
		}
		correct += best
	}
	purity := float64(correct) / 600
	if purity < 0.99 {
		t.Errorf("k-means purity = %g, want > 0.99", purity)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %g, want positive", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	data := NewMatrix(2, 2)
	if _, err := KMeans(data, 0, r, 10); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(data, 5, r, 10); err == nil {
		t.Error("n<k should fail")
	}
}

func TestKMeansK1(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	data, _ := threeBlobs(90, r)
	res, err := KMeans(data, 1, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Single centroid must be the grand mean.
	var mx, my float64
	for i := 0; i < data.Rows; i++ {
		mx += data.At(i, 0)
		my += data.At(i, 1)
	}
	mx /= float64(data.Rows)
	my /= float64(data.Rows)
	approx(t, res.Centroids.At(0, 0), mx, 1e-9, "k=1 centroid x")
	approx(t, res.Centroids.At(0, 1), my, 1e-9, "k=1 centroid y")
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// All-identical data must not divide by zero or loop forever.
	r := rand.New(rand.NewSource(73))
	data := NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		data.Set(i, 0, 5)
		data.Set(i, 1, 5)
	}
	res, err := KMeans(data, 2, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical-points inertia = %g, want 0", res.Inertia)
	}
}

func TestFitGMMRecoversComponents(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	data, truth := threeBlobs(900, r)
	g, err := FitGMM(data, 3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, Sum(g.Weights), 1, 1e-9, "weights sum to 1")
	// Predictions should recover the blobs (up to label permutation).
	var confusion [3][3]int
	for i := 0; i < data.Rows; i++ {
		confusion[truth[i]][g.Predict(data.Row(i))]++
	}
	var correct int
	for tr := 0; tr < 3; tr++ {
		best := 0
		for c := 0; c < 3; c++ {
			if confusion[tr][c] > best {
				best = confusion[tr][c]
			}
		}
		correct += best
	}
	if purity := float64(correct) / 900; purity < 0.99 {
		t.Errorf("GMM purity = %g, want > 0.99", purity)
	}
	if math.IsNaN(g.LogLik) || math.IsInf(g.LogLik, 0) {
		t.Errorf("log-likelihood = %g", g.LogLik)
	}
}

func TestGMMSampleMatchesMixture(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	data, _ := threeBlobs(900, r)
	g, err := FitGMM(data, 3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled points should classify to components in weight proportions.
	counts := make([]float64, 3)
	const n = 6000
	for i := 0; i < n; i++ {
		x := g.Sample(r)
		counts[g.Predict(x)]++
	}
	for c := range counts {
		approx(t, counts[c]/n, g.Weights[c], 0.03, "sampled component frequency")
	}
}

func TestFitGMMErrors(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	if _, err := FitGMM(NewMatrix(2, 2), 5, r, 10); err == nil {
		t.Error("n<k GMM should fail")
	}
}

func TestLogSumExp(t *testing.T) {
	approx(t, logSumExp([]float64{0, 0}), math.Log(2), 1e-12, "lse of equal logs")
	approx(t, logSumExp([]float64{-1000, -1000}), -1000+math.Log(2), 1e-9, "lse underflow safety")
	if !math.IsInf(logSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("lse of -inf should be -inf")
	}
}
