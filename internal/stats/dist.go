package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a univariate probability distribution. All the parametric families
// that the workload-modeling literature fits to datacenter features
// (interarrival times, request sizes, service times, utilizations) implement
// it, as does the non-parametric Empirical distribution.
type Dist interface {
	// Name returns the family name, e.g. "exponential".
	Name() string
	// Params returns the distribution parameters in a fixed order.
	Params() []float64
	// Mean returns the distribution mean (possibly +Inf).
	Mean() float64
	// Var returns the distribution variance (possibly +Inf).
	Var() float64
	// PDF returns the density (or mass, for discrete families) at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile, the inverse of CDF.
	Quantile(p float64) float64
	// Rand draws a variate using the supplied source.
	Rand(r *rand.Rand) float64
}

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// Name implements Dist.
func (Uniform) Name() string { return "uniform" }

// Params implements Dist; order is A, B.
func (u Uniform) Params() []float64 { return []float64{u.A, u.B} }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Var implements Dist.
func (u Uniform) Var() float64 { d := u.B - u.A; return d * d / 12 }

// PDF implements Dist.
func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B || u.B <= u.A {
		return 0
	}
	return 1 / (u.B - u.A)
}

// CDF implements Dist.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Quantile implements Dist.
func (u Uniform) Quantile(p float64) float64 { return u.A + clamp01(p)*(u.B-u.A) }

// Rand implements Dist.
func (u Uniform) Rand(r *rand.Rand) float64 { return u.A + r.Float64()*(u.B-u.A) }

// Exponential is the exponential distribution with rate Rate (mean 1/Rate),
// the canonical model for Poisson interarrival times.
type Exponential struct {
	Rate float64
}

// Name implements Dist.
func (Exponential) Name() string { return "exponential" }

// Params implements Dist; order is Rate.
func (e Exponential) Params() []float64 { return []float64{e.Rate} }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var implements Dist.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// PDF implements Dist.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Quantile implements Dist.
func (e Exponential) Quantile(p float64) float64 {
	p = clamp01(p)
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / e.Rate
}

// Rand implements Dist.
func (e Exponential) Rand(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// Name implements Dist.
func (Normal) Name() string { return "normal" }

// Params implements Dist; order is Mu, Sigma.
func (n Normal) Params() []float64 { return []float64{n.Mu, n.Sigma} }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Var implements Dist.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile implements Dist.
func (n Normal) Quantile(p float64) float64 { return n.Mu + n.Sigma*NormQuantile(clamp01(p)) }

// Rand implements Dist.
func (n Normal) Rand(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// LogNormal is the log-normal distribution: ln X ~ Normal(Mu, Sigma). It is
// the classic heavy-tailed model for file and request sizes.
type LogNormal struct {
	Mu, Sigma float64
}

// Name implements Dist.
func (LogNormal) Name() string { return "lognormal" }

// Params implements Dist; order is Mu, Sigma.
func (l LogNormal) Params() []float64 { return []float64{l.Mu, l.Sigma} }

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var implements Dist.
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// PDF implements Dist.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Quantile implements Dist.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormQuantile(clamp01(p)))
}

// Rand implements Dist.
func (l LogNormal) Rand(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Pareto is the (type I) Pareto distribution with scale Xm > 0 and shape
// Alpha > 0, the canonical heavy-tail model (Feitelson's "heavy tails").
type Pareto struct {
	Xm, Alpha float64
}

// Name implements Dist.
func (Pareto) Name() string { return "pareto" }

// Params implements Dist; order is Xm, Alpha.
func (p Pareto) Params() []float64 { return []float64{p.Xm, p.Alpha} }

// Mean implements Dist; infinite for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Var implements Dist; infinite for Alpha <= 2.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// PDF implements Dist.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// CDF implements Dist.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Dist.
func (p Pareto) Quantile(q float64) float64 {
	q = clamp01(q)
	if q == 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Rand implements Dist.
func (p Pareto) Rand(r *rand.Rand) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Weibull is the Weibull distribution with shape K and scale Lambda; shape
// below 1 gives the stretched-exponential tails common in storage
// interarrival gaps.
type Weibull struct {
	K, Lambda float64
}

// Name implements Dist.
func (Weibull) Name() string { return "weibull" }

// Params implements Dist; order is K, Lambda.
func (w Weibull) Params() []float64 { return []float64{w.K, w.Lambda} }

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Var implements Dist.
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// PDF implements Dist.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	z := x / w.Lambda
	return (w.K / w.Lambda) * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// CDF implements Dist.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Quantile implements Dist.
func (w Weibull) Quantile(p float64) float64 {
	p = clamp01(p)
	if p == 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}

// Rand implements Dist.
func (w Weibull) Rand(r *rand.Rand) float64 {
	return w.Lambda * math.Pow(r.ExpFloat64(), 1/w.K)
}

// Gamma is the gamma distribution with shape Shape and rate Rate
// (mean Shape/Rate). It generalizes Erlang service stages.
type Gamma struct {
	Shape, Rate float64
}

// Name implements Dist.
func (Gamma) Name() string { return "gamma" }

// Params implements Dist; order is Shape, Rate.
func (g Gamma) Params() []float64 { return []float64{g.Shape, g.Rate} }

// Mean implements Dist.
func (g Gamma) Mean() float64 { return g.Shape / g.Rate }

// Var implements Dist.
func (g Gamma) Var() float64 { return g.Shape / (g.Rate * g.Rate) }

// PDF implements Dist.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if g.Shape == 1 {
			return g.Rate
		}
		if g.Shape < 1 {
			return math.Inf(1)
		}
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	return math.Exp(g.Shape*math.Log(g.Rate) + (g.Shape-1)*math.Log(x) - g.Rate*x - lg)
}

// CDF implements Dist.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncP(g.Shape, g.Rate*x)
}

// Quantile implements Dist, via bisection on the CDF.
func (g Gamma) Quantile(p float64) float64 {
	p = clamp01(p)
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	// Bracket: mean + enough standard deviations.
	hi := g.Mean() + 20*math.Sqrt(g.Var())
	for g.CDF(hi) < p {
		hi *= 2
	}
	return bisectCDF(g.CDF, 0, hi, p)
}

// Rand implements Dist using the Marsaglia-Tsang method.
func (g Gamma) Rand(r *rand.Rand) float64 {
	shape := g.Shape
	boost := 1.0
	if shape < 1 {
		// X ~ Gamma(shape+1) * U^{1/shape}.
		boost = math.Pow(r.Float64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 || math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return boost * d * v / g.Rate
		}
	}
}

// Deterministic is the degenerate distribution concentrated at Value,
// useful for fixed-size requests and constant service times.
type Deterministic struct {
	Value float64
}

// Name implements Dist.
func (Deterministic) Name() string { return "deterministic" }

// Params implements Dist; order is Value.
func (d Deterministic) Params() []float64 { return []float64{d.Value} }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.Value }

// Var implements Dist.
func (Deterministic) Var() float64 { return 0 }

// PDF implements Dist; it reports the point mass at Value.
func (d Deterministic) PDF(x float64) float64 {
	if x == d.Value {
		return 1
	}
	return 0
}

// CDF implements Dist.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Quantile implements Dist.
func (d Deterministic) Quantile(float64) float64 { return d.Value }

// Rand implements Dist.
func (d Deterministic) Rand(*rand.Rand) float64 { return d.Value }

// Poisson is the Poisson distribution with mean Lambda (a discrete
// distribution over counts; PDF is the probability mass function).
type Poisson struct {
	Lambda float64
}

// Name implements Dist.
func (Poisson) Name() string { return "poisson" }

// Params implements Dist; order is Lambda.
func (p Poisson) Params() []float64 { return []float64{p.Lambda} }

// Mean implements Dist.
func (p Poisson) Mean() float64 { return p.Lambda }

// Var implements Dist.
func (p Poisson) Var() float64 { return p.Lambda }

// PDF implements Dist; x is truncated to an integer count.
func (p Poisson) PDF(x float64) float64 {
	if x < 0 || x != math.Trunc(x) {
		return 0
	}
	k := x
	lg, _ := math.Lgamma(k + 1)
	return math.Exp(k*math.Log(p.Lambda) - p.Lambda - lg)
}

// CDF implements Dist: P(X <= x) = Q(floor(x)+1, lambda).
func (p Poisson) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return GammaIncQ(math.Floor(x)+1, p.Lambda)
}

// Quantile implements Dist by stepping the CDF.
func (p Poisson) Quantile(q float64) float64 {
	q = clamp01(q)
	if q == 1 {
		return math.Inf(1)
	}
	var k float64
	cdf := p.CDF(0)
	for cdf < q && k < 1e9 {
		k++
		cdf = p.CDF(k)
	}
	return k
}

// Rand implements Dist. For small Lambda it uses Knuth's product method;
// for large Lambda, normal approximation with a correction search.
func (p Poisson) Rand(r *rand.Rand) float64 {
	if p.Lambda < 30 {
		l := math.Exp(-p.Lambda)
		k := 0
		prod := r.Float64()
		for prod > l {
			k++
			prod *= r.Float64()
		}
		return float64(k)
	}
	// PTRS-lite: normal approximation rounded, clipped at zero. Accurate
	// enough for workload synthesis at high rates.
	k := math.Round(p.Lambda + math.Sqrt(p.Lambda)*r.NormFloat64())
	if k < 0 {
		return 0
	}
	return k
}

// Zipf is the Zipf distribution over ranks 1..N with exponent S >= 0,
// the standard popularity model for objects and chunks.
type Zipf struct {
	S float64
	N int

	// cdf is the cumulative table precomputed by NewZipf. A zero Zipf
	// still works but recomputes per call: table() deliberately does NOT
	// memoize into the struct, so a NewZipf-constructed Zipf is read-only
	// and safe for concurrent Rand/CDF/Quantile use.
	cdf []float64
	// alias is the frozen O(1) rank sampler, also built by NewZipf; a zero
	// Zipf falls back to binary search over the CDF table.
	alias Alias
}

// NewZipf returns a Zipf distribution with a precomputed CDF table and a
// frozen alias table, making Rand an O(1) draw.
func NewZipf(s float64, n int) *Zipf {
	z := &Zipf{S: s, N: n}
	z.cdf = z.table()
	if len(z.cdf) > 0 {
		pmf := make([]float64, len(z.cdf))
		prev := 0.0
		for i, c := range z.cdf {
			pmf[i] = c - prev
			prev = c
		}
		z.alias = MustAlias(pmf)
	}
	return z
}

func (z *Zipf) table() []float64 {
	if z.cdf != nil {
		return z.cdf
	}
	if z.N <= 0 {
		return nil
	}
	cdf := make([]float64, z.N)
	var sum float64
	for i := 1; i <= z.N; i++ {
		sum += 1 / math.Pow(float64(i), z.S)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// Name implements Dist.
func (*Zipf) Name() string { return "zipf" }

// Params implements Dist; order is S, N.
func (z *Zipf) Params() []float64 { return []float64{z.S, float64(z.N)} }

// Mean implements Dist.
func (z *Zipf) Mean() float64 {
	cdf := z.table()
	var mean, prev float64
	for i, c := range cdf {
		mean += float64(i+1) * (c - prev)
		prev = c
	}
	return mean
}

// Var implements Dist.
func (z *Zipf) Var() float64 {
	cdf := z.table()
	m := z.Mean()
	var v, prev float64
	for i, c := range cdf {
		d := float64(i+1) - m
		v += d * d * (c - prev)
		prev = c
	}
	return v
}

// PDF implements Dist (probability mass at rank x in 1..N).
func (z *Zipf) PDF(x float64) float64 {
	k := int(x)
	if float64(k) != x || k < 1 || k > z.N {
		return 0
	}
	cdf := z.table()
	if k == 1 {
		return cdf[0]
	}
	return cdf[k-1] - cdf[k-2]
}

// CDF implements Dist.
func (z *Zipf) CDF(x float64) float64 {
	k := int(math.Floor(x))
	if k < 1 {
		return 0
	}
	if k >= z.N {
		return 1
	}
	return z.table()[k-1]
}

// Quantile implements Dist.
func (z *Zipf) Quantile(p float64) float64 {
	p = clamp01(p)
	cdf := z.table()
	i := sort.SearchFloat64s(cdf, p)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return float64(i + 1)
}

// Rand implements Dist: an O(1) alias draw when the table was frozen by
// NewZipf, otherwise inversion of the CDF table by binary search. Either
// path consumes exactly one uniform variate.
func (z *Zipf) Rand(r *rand.Rand) float64 {
	if !z.alias.Empty() {
		return float64(z.alias.Draw(r) + 1)
	}
	cdf := z.table()
	u := r.Float64()
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return float64(i + 1)
}

// Empirical is the empirical distribution of a sample: CDF is the ECDF and
// Rand resamples (with interpolation between order statistics).
type Empirical struct {
	sorted []float64
	// grid is the frozen inverse-CDF table Rand draws from. For samples up
	// to empiricalGridCells+1 observations it aliases sorted (draws are
	// bit-identical to interpolating the full sample); above that it is the
	// interpolated ECDF tabulated on a uniform grid, which keeps the
	// random-access working set of a hot synthesis loop at 8 KB per
	// distribution no matter how large the training sample was.
	grid []float64
	// constant holds the single sample value when every observation is
	// identical (common for workloads with deterministic request sizes);
	// Rand then skips the grid loads entirely. constOK marks it valid.
	constant float64
	constOK  bool
}

// empiricalGridCells is the resolution of the frozen inverse-CDF grid; the
// piecewise-linear tabulation error is bounded by the probability mass of
// one cell, 1/1024.
const empiricalGridCells = 1024

// freeze builds the inverse-CDF grid; sorted must already be sorted.
func (e *Empirical) freeze() {
	e.constOK = e.sorted[0] == e.sorted[len(e.sorted)-1]
	e.constant = e.sorted[0]
	if len(e.sorted) <= empiricalGridCells+1 {
		e.grid = e.sorted
		return
	}
	g := make([]float64, empiricalGridCells+1)
	for k := range g {
		g[k] = quantileSorted(e.sorted, float64(k)/empiricalGridCells)
	}
	e.grid = g
}

// NewEmpirical returns the empirical distribution of xs. It copies xs.
func NewEmpirical(xs []float64) (*Empirical, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	e := &Empirical{sorted: s}
	e.freeze()
	return e, nil
}

// Name implements Dist.
func (*Empirical) Name() string { return "empirical" }

// Params implements Dist; the sample size.
func (e *Empirical) Params() []float64 { return []float64{float64(len(e.sorted))} }

// Mean implements Dist.
func (e *Empirical) Mean() float64 { return Mean(e.sorted) }

// Var implements Dist.
func (e *Empirical) Var() float64 { return Variance(e.sorted) }

// PDF implements Dist; for the empirical distribution it reports the
// fraction of observations exactly equal to x.
func (e *Empirical) PDF(x float64) float64 {
	lo := sort.SearchFloat64s(e.sorted, x)
	hi := lo
	for hi < len(e.sorted) && e.sorted[hi] == x {
		hi++
	}
	return float64(hi-lo) / float64(len(e.sorted))
}

// CDF implements Dist (the ECDF).
func (e *Empirical) CDF(x float64) float64 {
	// Number of observations <= x.
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// Quantile implements Dist with linear interpolation.
func (e *Empirical) Quantile(p float64) float64 { return quantileSorted(e.sorted, clamp01(p)) }

// Rand implements Dist by inverse-transform sampling of the frozen
// inverse-CDF grid (the interpolated ECDF itself for small samples; see
// Empirical.grid). One uniform variate per draw.
func (e *Empirical) Rand(r *rand.Rand) float64 {
	u := r.Float64() // always consume one variate, constant sample or not
	if e.constOK {
		return e.constant
	}
	return quantileSorted(e.grid, u)
}

// Sample returns a copy of the sorted sample, so callers can never corrupt
// a trained model by mutating the returned slice.
func (e *Empirical) Sample() []float64 {
	out := make([]float64, len(e.sorted))
	copy(out, e.sorted)
	return out
}

// empiricalJSON is the serialized form of an Empirical distribution.
type empiricalJSON struct {
	Sample []float64 `json:"sample"`
}

// MarshalJSON implements json.Marshaler.
func (e *Empirical) MarshalJSON() ([]byte, error) {
	return json.Marshal(empiricalJSON{Sample: e.sorted})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Empirical) UnmarshalJSON(data []byte) error {
	var raw empiricalJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Sample) == 0 {
		return ErrEmpty
	}
	s := make([]float64, len(raw.Sample))
	copy(s, raw.Sample)
	sort.Float64s(s)
	e.sorted = s
	e.freeze()
	return nil
}

// DistFromSpec reconstructs a parametric distribution from its Name() and
// Params() values — the inverse of the Dist accessors, used when loading
// persisted models. The empirical family is not parametric and is rejected.
func DistFromSpec(name string, params []float64) (Dist, error) {
	need := func(n int) error {
		if len(params) != n {
			return fmt.Errorf("stats: %s needs %d parameters, got %d", name, n, len(params))
		}
		return nil
	}
	switch name {
	case "uniform":
		if err := need(2); err != nil {
			return nil, err
		}
		return Uniform{A: params[0], B: params[1]}, nil
	case "exponential":
		if err := need(1); err != nil {
			return nil, err
		}
		return Exponential{Rate: params[0]}, nil
	case "normal":
		if err := need(2); err != nil {
			return nil, err
		}
		return Normal{Mu: params[0], Sigma: params[1]}, nil
	case "lognormal":
		if err := need(2); err != nil {
			return nil, err
		}
		return LogNormal{Mu: params[0], Sigma: params[1]}, nil
	case "pareto":
		if err := need(2); err != nil {
			return nil, err
		}
		return Pareto{Xm: params[0], Alpha: params[1]}, nil
	case "weibull":
		if err := need(2); err != nil {
			return nil, err
		}
		return Weibull{K: params[0], Lambda: params[1]}, nil
	case "gamma":
		if err := need(2); err != nil {
			return nil, err
		}
		return Gamma{Shape: params[0], Rate: params[1]}, nil
	case "deterministic":
		if err := need(1); err != nil {
			return nil, err
		}
		return Deterministic{Value: params[0]}, nil
	case "poisson":
		if err := need(1); err != nil {
			return nil, err
		}
		return Poisson{Lambda: params[0]}, nil
	case "zipf":
		if err := need(2); err != nil {
			return nil, err
		}
		return NewZipf(params[0], int(params[1])), nil
	default:
		return nil, fmt.Errorf("stats: unknown distribution family %q", name)
	}
}

// Sample draws n variates from d using r.
func Sample(d Dist, n int, r *rand.Rand) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Rand(r)
	}
	return xs
}

// DescribeDist formats a distribution with its parameters, e.g.
// "pareto(xm=1.0, alpha=1.5)".
func DescribeDist(d Dist) string {
	return fmt.Sprintf("%s%v", d.Name(), d.Params())
}

func clamp01(p float64) float64 {
	switch {
	case p < 0 || math.IsNaN(p):
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// bisectCDF finds x in [lo, hi] with cdf(x) = p to within 1e-12 relative
// tolerance.
func bisectCDF(cdf func(float64) float64, lo, hi, p float64) float64 {
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}
