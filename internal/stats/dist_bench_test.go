package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkZipfRand times one popularity draw — the per-request file and
// segment choice of the GFS simulator. With the frozen alias table this is
// O(1) and 0 allocs/op at any rank count.
func BenchmarkZipfRand(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			z := NewZipf(0.8, n)
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = z.Rand(r)
			}
			_ = sink
		})
	}
}

func BenchmarkEmpiricalRand(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	e, err := NewEmpirical(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = e.Rand(r)
	}
	_ = sink
}
