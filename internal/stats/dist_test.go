package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// allDists returns one representative of each distribution family with
// fixed, well-behaved parameters.
func allDists() []Dist {
	return []Dist{
		Uniform{A: 2, B: 10},
		Exponential{Rate: 0.5},
		Normal{Mu: 3, Sigma: 2},
		LogNormal{Mu: 1, Sigma: 0.5},
		Pareto{Xm: 1, Alpha: 2.5},
		Weibull{K: 1.5, Lambda: 2},
		Gamma{Shape: 3, Rate: 2},
		Deterministic{Value: 7},
		Poisson{Lambda: 4},
		NewZipf(1.1, 100),
	}
}

func TestDistCDFMonotone(t *testing.T) {
	for _, d := range allDists() {
		t.Run(d.Name(), func(t *testing.T) {
			prev := -0.1
			for x := -5.0; x <= 50; x += 0.25 {
				c := d.CDF(x)
				if c < prev-1e-12 {
					t.Fatalf("CDF not monotone at x=%g: %g < %g", x, c, prev)
				}
				if c < 0 || c > 1 {
					t.Fatalf("CDF out of [0,1] at x=%g: %g", x, c)
				}
				prev = c
			}
		})
	}
}

func TestDistQuantileCDFRoundTrip(t *testing.T) {
	// For continuous distributions, CDF(Quantile(p)) == p.
	continuous := []Dist{
		Uniform{A: 2, B: 10},
		Exponential{Rate: 0.5},
		Normal{Mu: 3, Sigma: 2},
		LogNormal{Mu: 1, Sigma: 0.5},
		Pareto{Xm: 1, Alpha: 2.5},
		Weibull{K: 1.5, Lambda: 2},
		Gamma{Shape: 3, Rate: 2},
	}
	for _, d := range continuous {
		t.Run(d.Name(), func(t *testing.T) {
			for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				q := d.Quantile(p)
				approx(t, d.CDF(q), p, 1e-8, "CDF(Quantile(p))")
			}
		})
	}
}

func TestDistQuantileCDFProperty(t *testing.T) {
	d := Gamma{Shape: 2.3, Rate: 1.7}
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 0.001 || p > 0.999 {
			return true
		}
		return math.Abs(d.CDF(d.Quantile(p))-p) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistSampleMoments(t *testing.T) {
	// Sample mean/variance should be close to the analytic values.
	r := rand.New(rand.NewSource(42))
	const n = 100000
	for _, d := range allDists() {
		if math.IsInf(d.Var(), 1) {
			continue
		}
		t.Run(d.Name(), func(t *testing.T) {
			xs := Sample(d, n, r)
			wantMean, wantVar := d.Mean(), d.Var()
			tolM := 0.05 * (math.Abs(wantMean) + math.Sqrt(wantVar) + 0.01)
			approx(t, Mean(xs), wantMean, tolM, "sample mean")
			tolV := 0.12 * (wantVar + 0.01)
			approx(t, Variance(xs), wantVar, tolV, "sample variance")
		})
	}
}

func TestDistSampleAgainstCDF(t *testing.T) {
	// KS test of each continuous family's sampler against its own CDF
	// should not reject.
	r := rand.New(rand.NewSource(99))
	continuous := []Dist{
		Uniform{A: 2, B: 10},
		Exponential{Rate: 0.5},
		Normal{Mu: 3, Sigma: 2},
		LogNormal{Mu: 1, Sigma: 0.5},
		Pareto{Xm: 1, Alpha: 2.5},
		Weibull{K: 1.5, Lambda: 2},
		Gamma{Shape: 3, Rate: 2},
	}
	for _, d := range continuous {
		t.Run(d.Name(), func(t *testing.T) {
			xs := Sample(d, 5000, r)
			res := KSTest(xs, d)
			if res.P < 0.001 {
				t.Errorf("sampler rejected against own CDF: D=%g p=%g", res.Statistic, res.P)
			}
		})
	}
}

func TestExponentialQuantile(t *testing.T) {
	e := Exponential{Rate: 2}
	approx(t, e.Quantile(0.5), math.Ln2/2, 1e-12, "exponential median")
	if !math.IsInf(e.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestParetoMoments(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 3}
	approx(t, p.Mean(), 3, 1e-12, "pareto mean")
	approx(t, p.Var(), 3, 1e-12, "pareto variance")
	heavy := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(heavy.Mean(), 1) {
		t.Error("pareto alpha<=1 should have infinite mean")
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1.5}.Var(), 1) {
		t.Error("pareto alpha<=2 should have infinite variance")
	}
}

func TestPoissonPMFSums(t *testing.T) {
	p := Poisson{Lambda: 3}
	var sum float64
	for k := 0.0; k <= 60; k++ {
		sum += p.PDF(k)
	}
	approx(t, sum, 1, 1e-9, "poisson pmf total mass")
	approx(t, p.CDF(60), 1, 1e-9, "poisson cdf tail")
	if p.PDF(1.5) != 0 {
		t.Error("poisson PMF at non-integer should be 0")
	}
}

func TestPoissonLargeLambdaRand(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := Poisson{Lambda: 200}
	xs := Sample(p, 20000, r)
	approx(t, Mean(xs), 200, 2, "poisson large-lambda mean")
	approx(t, Variance(xs), 200, 12, "poisson large-lambda variance")
}

func TestZipf(t *testing.T) {
	z := NewZipf(1.0, 10)
	// PMF proportional to 1/k.
	var h float64
	for k := 1; k <= 10; k++ {
		h += 1 / float64(k)
	}
	approx(t, z.PDF(1), 1/h, 1e-12, "zipf pmf rank 1")
	approx(t, z.PDF(10), 1/(10*h), 1e-12, "zipf pmf rank 10")
	approx(t, z.CDF(10), 1, 1e-12, "zipf cdf at N")
	if z.PDF(0) != 0 || z.PDF(11) != 0 {
		t.Error("zipf PMF outside 1..N should be 0")
	}
	r := rand.New(rand.NewSource(6))
	xs := Sample(z, 50000, r)
	approx(t, Mean(xs), z.Mean(), 0.05*z.Mean(), "zipf sample mean")
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 4}
	if d.CDF(3.999) != 0 || d.CDF(4) != 1 {
		t.Error("deterministic CDF step is wrong")
	}
	if d.Quantile(0.3) != 4 || d.Rand(nil) != 4 {
		t.Error("deterministic quantile/rand should be the value")
	}
}

func TestEmpirical(t *testing.T) {
	e, err := NewEmpirical([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e.CDF(2), 0.75, 1e-12, "empirical CDF")
	approx(t, e.PDF(2), 0.5, 1e-12, "empirical point mass")
	approx(t, e.Mean(), 2, 1e-12, "empirical mean")
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("NewEmpirical(nil) should fail")
	}
	r := rand.New(rand.NewSource(8))
	xs := Sample(e, 20000, r)
	approx(t, Mean(xs), 2, 0.05, "empirical resample mean")
}

func TestGammaRandSmallShape(t *testing.T) {
	// Shape < 1 exercises the boost path of Marsaglia-Tsang.
	r := rand.New(rand.NewSource(9))
	g := Gamma{Shape: 0.5, Rate: 1}
	xs := Sample(g, 50000, r)
	approx(t, Mean(xs), 0.5, 0.02, "gamma(0.5) mean")
	res := KSTest(xs[:5000], g)
	if res.P < 0.001 {
		t.Errorf("gamma small-shape sampler rejected: p=%g", res.P)
	}
}

func TestUniformEdges(t *testing.T) {
	u := Uniform{A: 1, B: 3}
	if u.PDF(0.5) != 0 || u.PDF(3.5) != 0 {
		t.Error("uniform PDF outside support should be 0")
	}
	approx(t, u.PDF(2), 0.5, 1e-12, "uniform density")
	approx(t, u.Quantile(0.25), 1.5, 1e-12, "uniform quantile")
}

func TestDistFromSpecRoundTrip(t *testing.T) {
	for _, d := range allDists() {
		if d.Name() == "empirical" {
			continue
		}
		back, err := DistFromSpec(d.Name(), d.Params())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if back.Name() != d.Name() {
			t.Errorf("family changed: %s -> %s", d.Name(), back.Name())
		}
		wantParams := d.Params()
		for i, p := range back.Params() {
			if p != wantParams[i] {
				t.Errorf("%s param %d: %g != %g", d.Name(), i, p, wantParams[i])
			}
		}
		// Same CDF at a few points.
		for _, x := range []float64{0.5, 1, 3, 10} {
			if math.Abs(back.CDF(x)-d.CDF(x)) > 1e-12 {
				t.Errorf("%s CDF(%g) differs", d.Name(), x)
			}
		}
	}
	if _, err := DistFromSpec("bogus", nil); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := DistFromSpec("normal", []float64{1}); err == nil {
		t.Error("wrong param count should fail")
	}
	if _, err := DistFromSpec("empirical", []float64{5}); err == nil {
		t.Error("empirical is not parametric")
	}
}

func TestEmpiricalJSONRoundTrip(t *testing.T) {
	e, err := NewEmpirical([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Empirical
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sample(), e.Sample()) {
		t.Errorf("sample changed: %v vs %v", back.Sample(), e.Sample())
	}
	if err := json.Unmarshal([]byte(`{"sample":[]}`), &back); err == nil {
		t.Error("empty sample should fail")
	}
	if err := json.Unmarshal([]byte(`{`), &back); err == nil {
		t.Error("bad json should fail")
	}
}

func TestDescribeDist(t *testing.T) {
	got := DescribeDist(Exponential{Rate: 2})
	if got != "exponential[2]" {
		t.Errorf("DescribeDist = %q", got)
	}
}
