package stats

import (
	"fmt"
	"math"
	"sort"
)

// Maximum-likelihood fitting for the distribution families, plus the
// distribution-fitting selector that the network-modeling literature
// (Feitelson, Li, Sengupta) applies to interarrival times: fit every
// candidate family and pick the one with the smallest Kolmogorov-Smirnov
// distance.

// FitExponential fits an exponential distribution by MLE (rate = 1/mean).
// All observations must be positive on average.
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) == 0 {
		return Exponential{}, ErrEmpty
	}
	m := Mean(xs)
	if m <= 0 {
		return Exponential{}, fmt.Errorf("stats: exponential fit needs positive mean, got %g", m)
	}
	return Exponential{Rate: 1 / m}, nil
}

// FitNormal fits a Gaussian by MLE (sample mean and population std).
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) < 2 {
		return Normal{}, ErrShortSample
	}
	sigma := math.Sqrt(PopVariance(xs))
	if sigma == 0 {
		sigma = 1e-12
	}
	return Normal{Mu: Mean(xs), Sigma: sigma}, nil
}

// FitLogNormal fits a log-normal by MLE on the logs. All observations must
// be positive.
func FitLogNormal(xs []float64) (LogNormal, error) {
	if len(xs) < 2 {
		return LogNormal{}, ErrShortSample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogNormal{}, fmt.Errorf("stats: lognormal fit needs positive data, got %g", x)
		}
		logs[i] = math.Log(x)
	}
	sigma := math.Sqrt(PopVariance(logs))
	if sigma == 0 {
		sigma = 1e-12
	}
	return LogNormal{Mu: Mean(logs), Sigma: sigma}, nil
}

// FitPareto fits a Pareto distribution by MLE: Xm is the sample minimum and
// Alpha the Hill estimator n / sum(ln(x_i/xm)). All observations must be
// positive.
func FitPareto(xs []float64) (Pareto, error) {
	if len(xs) < 2 {
		return Pareto{}, ErrShortSample
	}
	xm := Min(xs)
	if xm <= 0 {
		return Pareto{}, fmt.Errorf("stats: pareto fit needs positive data, got min %g", xm)
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x / xm)
	}
	if s <= 0 {
		return Pareto{}, fmt.Errorf("stats: pareto fit degenerate (all observations equal)")
	}
	return Pareto{Xm: xm, Alpha: float64(len(xs)) / s}, nil
}

// FitWeibull fits a Weibull distribution by MLE, solving the profile shape
// equation with Newton iteration. All observations must be positive.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 2 {
		return Weibull{}, ErrShortSample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Weibull{}, fmt.Errorf("stats: weibull fit needs positive data, got %g", x)
		}
		logs[i] = math.Log(x)
	}
	meanLog := Mean(logs)
	// Initial guess from the method of moments on logs:
	// Var(ln X) = pi^2 / (6 k^2).
	sl := math.Sqrt(PopVariance(logs))
	k := 1.0
	if sl > 0 {
		k = math.Pi / (sl * math.Sqrt(6))
	}
	// Newton iteration on f(k) = A(k)/B(k) - 1/k - meanLog = 0 where
	// A(k) = sum x^k ln x, B(k) = sum x^k.
	for iter := 0; iter < 100; iter++ {
		var bk, ak, ck float64 // sum x^k, sum x^k lnx, sum x^k (lnx)^2
		for i, lx := range logs {
			xk := math.Exp(k * logs[i])
			bk += xk
			ak += xk * lx
			ck += xk * lx * lx
		}
		f := ak/bk - 1/k - meanLog
		fp := (ck*bk-ak*ak)/(bk*bk) + 1/(k*k)
		if fp == 0 {
			break
		}
		next := k - f/fp
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-10*k {
			k = next
			break
		}
		k = next
	}
	if !(k > 0) || math.IsInf(k, 0) {
		return Weibull{}, fmt.Errorf("stats: weibull shape iteration diverged")
	}
	var bk float64
	for _, x := range xs {
		bk += math.Pow(x, k)
	}
	lambda := math.Pow(bk/float64(len(xs)), 1/k)
	return Weibull{K: k, Lambda: lambda}, nil
}

// FitGamma fits a gamma distribution by MLE using the Minka/generalized
// Newton iteration on the shape. All observations must be positive.
func FitGamma(xs []float64) (Gamma, error) {
	if len(xs) < 2 {
		return Gamma{}, ErrShortSample
	}
	m := Mean(xs)
	var sumLog float64
	for _, x := range xs {
		if x <= 0 {
			return Gamma{}, fmt.Errorf("stats: gamma fit needs positive data, got %g", x)
		}
		sumLog += math.Log(x)
	}
	meanLog := sumLog / float64(len(xs))
	s := math.Log(m) - meanLog
	if s <= 0 {
		// Zero-variance sample; arbitrary high shape approximates a point.
		return Gamma{Shape: 1e6, Rate: 1e6 / m}, nil
	}
	// Standard initialization.
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for iter := 0; iter < 100; iter++ {
		f := math.Log(k) - Digamma(k) - s
		fp := 1/k - Trigamma(k)
		if fp == 0 {
			break
		}
		next := k - f/fp
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	return Gamma{Shape: k, Rate: k / m}, nil
}

// FitUniform fits a uniform distribution by MLE (sample min and max).
func FitUniform(xs []float64) (Uniform, error) {
	if len(xs) < 2 {
		return Uniform{}, ErrShortSample
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1e-12
	}
	return Uniform{A: lo, B: hi}, nil
}

// FitResult reports the outcome of fitting one candidate family.
type FitResult struct {
	Dist Dist
	// KS is the one-sample Kolmogorov-Smirnov statistic of the data against
	// the fitted distribution.
	KS float64
	// P is the associated asymptotic p-value.
	P float64
	// Err is non-nil when the family could not be fitted to this sample.
	Err error
}

// FitAll fits every continuous candidate family to xs and returns the
// results sorted by ascending KS distance (best fit first). Families that
// fail to fit appear last with Err set.
func FitAll(xs []float64) []FitResult {
	type fitter struct {
		name string
		fit  func([]float64) (Dist, error)
	}
	fitters := []fitter{
		{"exponential", func(v []float64) (Dist, error) { return firstErr(FitExponential(v)) }},
		{"normal", func(v []float64) (Dist, error) { return firstErr(FitNormal(v)) }},
		{"lognormal", func(v []float64) (Dist, error) { return firstErr(FitLogNormal(v)) }},
		{"pareto", func(v []float64) (Dist, error) { return firstErr(FitPareto(v)) }},
		{"weibull", func(v []float64) (Dist, error) { return firstErr(FitWeibull(v)) }},
		{"gamma", func(v []float64) (Dist, error) { return firstErr(FitGamma(v)) }},
		{"uniform", func(v []float64) (Dist, error) { return firstErr(FitUniform(v)) }},
	}
	results := make([]FitResult, 0, len(fitters))
	for _, f := range fitters {
		d, err := f.fit(xs)
		if err != nil {
			results = append(results, FitResult{Err: fmt.Errorf("%s: %w", f.name, err), KS: math.Inf(1)})
			continue
		}
		ks := KSTest(xs, d)
		results = append(results, FitResult{Dist: d, KS: ks.Statistic, P: ks.P})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].KS < results[j].KS })
	return results
}

// FitBest fits all candidate families and returns the best by KS distance.
// This is the "distribution fitting through the Kolmogorov-Smirnov test"
// procedure Feitelson proposes for arrival processes.
func FitBest(xs []float64) (FitResult, error) {
	results := FitAll(xs)
	if len(results) == 0 || results[0].Err != nil {
		return FitResult{}, fmt.Errorf("stats: no distribution family fits the sample")
	}
	return results[0], nil
}

func firstErr[D Dist](d D, err error) (Dist, error) {
	if err != nil {
		return nil, err
	}
	return d, nil
}
