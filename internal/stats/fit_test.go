package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitExponential(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	xs := Sample(Exponential{Rate: 2}, 50000, r)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Rate, 2, 0.05, "exponential rate")
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := FitExponential([]float64{-1, -2}); err == nil {
		t.Error("negative-mean fit should fail")
	}
}

func TestFitNormal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := Sample(Normal{Mu: 5, Sigma: 3}, 50000, r)
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Mu, 5, 0.06, "normal mu")
	approx(t, fit.Sigma, 3, 0.06, "normal sigma")
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("short fit should fail")
	}
}

func TestFitLogNormal(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := Sample(LogNormal{Mu: 1, Sigma: 0.7}, 50000, r)
	fit, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Mu, 1, 0.02, "lognormal mu")
	approx(t, fit.Sigma, 0.7, 0.02, "lognormal sigma")
	if _, err := FitLogNormal([]float64{1, -1}); err == nil {
		t.Error("nonpositive data should fail")
	}
}

func TestFitPareto(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs := Sample(Pareto{Xm: 2, Alpha: 1.8}, 50000, r)
	fit, err := FitPareto(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Xm, 2, 0.01, "pareto xm")
	approx(t, fit.Alpha, 1.8, 0.05, "pareto alpha")
	if _, err := FitPareto([]float64{3, 3, 3}); err == nil {
		t.Error("degenerate pareto fit should fail")
	}
}

func TestFitWeibull(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, want := range []Weibull{{K: 0.7, Lambda: 2}, {K: 1.5, Lambda: 3}, {K: 3, Lambda: 0.5}} {
		xs := Sample(want, 50000, r)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, fit.K, want.K, 0.05*want.K, "weibull shape")
		approx(t, fit.Lambda, want.Lambda, 0.05*want.Lambda, "weibull scale")
	}
}

func TestFitGamma(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for _, want := range []Gamma{{Shape: 0.8, Rate: 2}, {Shape: 3, Rate: 0.5}, {Shape: 10, Rate: 10}} {
		xs := Sample(want, 50000, r)
		fit, err := FitGamma(xs)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, fit.Shape, want.Shape, 0.07*want.Shape, "gamma shape")
		approx(t, fit.Rate, want.Rate, 0.08*want.Rate, "gamma rate")
	}
}

func TestFitUniform(t *testing.T) {
	fit, err := FitUniform([]float64{3, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.A, 3, 1e-12, "uniform A")
	approx(t, fit.B, 7, 1e-12, "uniform B")
}

func TestFitBestRecoversFamily(t *testing.T) {
	// FitBest on data drawn from a known family should identify it (or an
	// indistinguishable neighbor).
	r := rand.New(rand.NewSource(16))
	tests := []struct {
		name    string
		src     Dist
		accept  map[string]bool
		samples int
	}{
		{"exponential", Exponential{Rate: 1}, map[string]bool{"exponential": true, "gamma": true, "weibull": true}, 5000},
		{"pareto", Pareto{Xm: 1, Alpha: 1.2}, map[string]bool{"pareto": true}, 5000},
		{"normal", Normal{Mu: 100, Sigma: 5}, map[string]bool{"normal": true, "gamma": true, "lognormal": true, "weibull": true}, 5000},
		{"lognormal", LogNormal{Mu: 0, Sigma: 1.5}, map[string]bool{"lognormal": true}, 5000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			xs := Sample(tt.src, tt.samples, r)
			best, err := FitBest(xs)
			if err != nil {
				t.Fatal(err)
			}
			if !tt.accept[best.Dist.Name()] {
				t.Errorf("FitBest picked %s (KS=%g), want one of %v", best.Dist.Name(), best.KS, tt.accept)
			}
		})
	}
}

func TestFitAllOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	xs := Sample(Exponential{Rate: 1}, 2000, r)
	results := FitAll(xs)
	if len(results) != 7 {
		t.Fatalf("FitAll returned %d results, want 7", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].KS < results[i-1].KS {
			t.Errorf("FitAll results not sorted at %d: %g < %g", i, results[i].KS, results[i-1].KS)
		}
	}
}

func TestFitAllWithNegativeData(t *testing.T) {
	// Positive-support families must fail gracefully; normal/uniform fit.
	r := rand.New(rand.NewSource(18))
	xs := Sample(Normal{Mu: 0, Sigma: 1}, 1000, r)
	results := FitAll(xs)
	best := results[0]
	if best.Err != nil {
		t.Fatalf("no family fit gaussian data: %v", best.Err)
	}
	if best.Dist.Name() != "normal" {
		t.Errorf("best fit to standard gaussian = %s, want normal", best.Dist.Name())
	}
	var failures int
	for _, res := range results {
		if res.Err != nil {
			failures++
			if !math.IsInf(res.KS, 1) {
				t.Error("failed fit should carry +Inf KS")
			}
		}
	}
	if failures == 0 {
		t.Error("expected positive-support families to fail on negative data")
	}
}

func TestFitBestEmptySample(t *testing.T) {
	if _, err := FitBest(nil); err == nil {
		t.Error("FitBest(nil) should fail")
	}
}
