package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin, which matches how workload
// feature histograms (the VU-list style of Luthi) are built over a known
// feature range.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram over [lo, hi) with nbins bins. It panics
// if nbins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, nbins)}
}

// HistogramOf builds an nbins histogram spanning the observed range of xs.
func HistogramOf(xs []float64, nbins int) *Histogram {
	lo, hi := Min(xs), Max(xs)
	if len(xs) == 0 || lo == hi {
		hi = lo + 1
	}
	h := NewHistogram(lo, hi+1e-12*(hi-lo), nbins)
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.binOf(x)]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Probabilities returns the normalized bin masses (empty histogram yields
// all zeros).
func (h *Histogram) Probabilities() []float64 {
	ps := make([]float64, len(h.Counts))
	if h.total == 0 {
		return ps
	}
	for i, c := range h.Counts {
		ps[i] = float64(c) / float64(h.total)
	}
	return ps
}

// Mean returns the histogram-approximated mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.Counts {
		s += float64(c) * h.BinCenter(i)
	}
	return s / float64(h.total)
}

// Quantile returns the histogram-approximated p-quantile via interpolation
// inside the containing bin.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := clamp01(p) * float64(h.total)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*h.BinWidth()
		}
		cum = next
	}
	return h.Hi
}

// Distance returns the L1 (total-variation x2) distance between the
// normalized masses of h and other. The histograms must have the same
// number of bins; the bin ranges are assumed comparable.
func (h *Histogram) Distance(other *Histogram) (float64, error) {
	if len(h.Counts) != len(other.Counts) {
		return 0, fmt.Errorf("stats: histogram bin mismatch %d vs %d", len(h.Counts), len(other.Counts))
	}
	hp, op := h.Probabilities(), other.Probabilities()
	var d float64
	for i := range hp {
		d += math.Abs(hp[i] - op[i])
	}
	return d, nil
}

// EMD returns the one-dimensional earth mover's distance (in bins) between
// the normalized masses of h and other, a smoother distributional distance
// than L1 for feature-fidelity scoring.
func (h *Histogram) EMD(other *Histogram) (float64, error) {
	if len(h.Counts) != len(other.Counts) {
		return 0, fmt.Errorf("stats: histogram bin mismatch %d vs %d", len(h.Counts), len(other.Counts))
	}
	hp, op := h.Probabilities(), other.Probabilities()
	var carry, emd float64
	for i := range hp {
		carry += hp[i] - op[i]
		emd += math.Abs(carry)
	}
	return emd, nil
}

// String renders a compact ASCII bar chart of the histogram, used by the
// figure-regeneration harnesses.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := int(40 * c / maxCount)
		fmt.Fprintf(&b, "[%12.4g,%12.4g) %8d %s\n",
			h.Lo+float64(i)*h.BinWidth(), h.Lo+float64(i+1)*h.BinWidth(),
			c, strings.Repeat("#", bar))
	}
	return b.String()
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns the ECDF evaluated at x.
func (e *ECDF) At(x float64) float64 {
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the p-quantile of the sample with interpolation.
func (e *ECDF) Quantile(p float64) float64 { return quantileSorted(e.sorted, clamp01(p)) }
