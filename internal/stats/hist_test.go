package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	// -3 clamps to bin 0; 42 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1, -3
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 42
		t.Errorf("bin4 = %d, want 2", h.Counts[4])
	}
	approx(t, h.BinWidth(), 2, 1e-12, "bin width")
	approx(t, h.BinCenter(0), 1, 1e-12, "bin center")
}

func TestHistogramProbabilities(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 3.5} {
		h.Add(x)
	}
	ps := h.Probabilities()
	wantPs := []float64{0.25, 0.5, 0, 0.25}
	for i := range ps {
		approx(t, ps[i], wantPs[i], 1e-12, "probabilities")
	}
	approx(t, Sum(ps), 1, 1e-12, "probabilities sum")
	empty := NewHistogram(0, 1, 3)
	if Sum(empty.Probabilities()) != 0 {
		t.Error("empty histogram probabilities should be zero")
	}
}

func TestHistogramOf(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	xs := Sample(Normal{Mu: 0, Sigma: 1}, 10000, r)
	h := HistogramOf(xs, 30)
	if h.Total() != 10000 {
		t.Errorf("total = %d, want 10000", h.Total())
	}
	approx(t, h.Mean(), 0, 0.05, "histogram mean approximates sample mean")
	approx(t, h.Quantile(0.5), 0, 0.08, "histogram median")
	// Degenerate: all equal.
	h2 := HistogramOf([]float64{5, 5, 5}, 4)
	if h2.Total() != 3 {
		t.Error("degenerate histogram lost observations")
	}
}

func TestHistogramDistanceAndEMD(t *testing.T) {
	a := NewHistogram(0, 4, 4)
	b := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5} {
		a.Add(x)
	}
	for _, x := range []float64{0.5, 1.5} {
		b.Add(x)
	}
	d, err := a.Distance(b)
	if err != nil || d != 0 {
		t.Errorf("identical histograms distance = %g, %v", d, err)
	}
	emd, err := a.EMD(b)
	if err != nil || emd != 0 {
		t.Errorf("identical histograms EMD = %g, %v", emd, err)
	}
	c := NewHistogram(0, 4, 4)
	c.Add(3.5) // all mass in last bin
	d, _ = a.Distance(c)
	approx(t, d, 2, 1e-12, "disjoint L1 distance")
	// EMD: a has mass .5 at bin0, .5 at bin1; c has 1.0 at bin3 →
	// 0.5*3 + 0.5*2 = 2.5 bins of work.
	emd, _ = a.EMD(c)
	approx(t, emd, 2.5, 1e-12, "EMD")
	mismatched := NewHistogram(0, 4, 8)
	if _, err := a.Distance(mismatched); err == nil {
		t.Error("bin mismatch should error")
	}
	if _, err := a.EMD(mismatched); err == nil {
		t.Error("bin mismatch should error for EMD")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	s := h.String()
	if !strings.Contains(s, "#") || len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Errorf("unexpected histogram rendering:\n%s", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics(t, func() { NewHistogram(0, 1, 0) }, "nbins=0")
	assertPanics(t, func() { NewHistogram(1, 1, 3) }, "hi==lo")
}

func assertPanics(t *testing.T, f func(), msg string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", msg)
		}
	}()
	f()
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		approx(t, e.At(tt.x), tt.want, 1e-12, "ECDF.At")
	}
	if e.N() != 4 {
		t.Errorf("N = %d, want 4", e.N())
	}
	approx(t, e.Quantile(0.5), 2.5, 1e-12, "ECDF median")
	if _, err := NewECDF(nil); err == nil {
		t.Error("NewECDF(nil) should fail")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	xs := Sample(LogNormal{Mu: 0, Sigma: 1}, 500, r)
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := 0.0; x < 20; x += 0.1 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF not monotone at %g", x)
		}
		prev = v
	}
}
