package stats

import (
	"math"
	"sort"
)

// Goodness-of-fit tests: one- and two-sample Kolmogorov-Smirnov and the
// chi-square test, the two tests the distribution-fitting literature uses
// to accept or reject a candidate arrival-process model.

// KSResult is the outcome of a Kolmogorov-Smirnov test.
type KSResult struct {
	// Statistic is the maximum absolute difference between the compared
	// CDFs (D_n), in [0, 1].
	Statistic float64
	// P is the asymptotic p-value: small values reject the hypothesis that
	// the sample follows the reference distribution.
	P float64
	// N is the effective sample size used for the p-value.
	N float64
}

// KSTest performs a one-sample Kolmogorov-Smirnov test of xs against the
// distribution d. An empty sample yields a zero-valued result with P = 1.
func KSTest(xs []float64, d Dist) KSResult {
	n := len(xs)
	if n == 0 {
		return KSResult{P: 1}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var dn float64
	for i, x := range sorted {
		f := d.CDF(x)
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > dn {
			dn = upper
		}
		if lower > dn {
			dn = lower
		}
	}
	en := float64(n)
	lambda := (math.Sqrt(en) + 0.12 + 0.11/math.Sqrt(en)) * dn
	return KSResult{Statistic: dn, P: KolmogorovQ(lambda), N: en}
}

// KSTest2 performs a two-sample Kolmogorov-Smirnov test between samples
// xs and ys. Empty samples yield P = 1.
func KSTest2(xs, ys []float64) KSResult {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return KSResult{P: 1}
	}
	a := make([]float64, n1)
	copy(a, xs)
	sort.Float64s(a)
	b := make([]float64, n2)
	copy(b, ys)
	sort.Float64s(b)
	var (
		i, j int
		dn   float64
	)
	for i < n1 && j < n2 {
		x1, x2 := a[i], b[j]
		x := math.Min(x1, x2)
		for i < n1 && a[i] <= x {
			i++
		}
		for j < n2 && b[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > dn {
			dn = diff
		}
	}
	en := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(en) + 0.12 + 0.11/math.Sqrt(en)) * dn
	return KSResult{Statistic: dn, P: KolmogorovQ(lambda), N: en}
}

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	// Statistic is the chi-square statistic over the binned sample.
	Statistic float64
	// DF is the degrees of freedom (bins - 1 - nparams).
	DF int
	// P is the p-value P(X^2_df >= Statistic).
	P float64
}

// ChiSquareTest bins xs into nbins equal-probability bins under d and tests
// the observed counts against the expected. nparams is the number of
// parameters estimated from the data (reduces the degrees of freedom).
func ChiSquareTest(xs []float64, d Dist, nbins, nparams int) ChiSquareResult {
	n := len(xs)
	if n == 0 || nbins < 2 {
		return ChiSquareResult{P: 1}
	}
	edges := make([]float64, nbins-1)
	for i := 1; i < nbins; i++ {
		edges[i-1] = d.Quantile(float64(i) / float64(nbins))
	}
	counts := make([]int, nbins)
	for _, x := range xs {
		idx := sort.SearchFloat64s(edges, x)
		counts[idx]++
	}
	expected := float64(n) / float64(nbins)
	var stat float64
	for _, c := range counts {
		diff := float64(c) - expected
		stat += diff * diff / expected
	}
	df := nbins - 1 - nparams
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{
		Statistic: stat,
		DF:        df,
		P:         ChiSquareSF(stat, float64(df)),
	}
}

// ChiSquareSF returns the survival function P(X^2_df >= x) of the
// chi-square distribution with df degrees of freedom.
func ChiSquareSF(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return GammaIncQ(df/2, x/2)
}
