package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSTestAcceptsTrueDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	d := Exponential{Rate: 1}
	xs := Sample(d, 2000, r)
	res := KSTest(xs, d)
	if res.Statistic < 0 || res.Statistic > 1 {
		t.Errorf("KS statistic %g out of [0,1]", res.Statistic)
	}
	if res.P < 0.01 {
		t.Errorf("KS rejected true distribution: p=%g", res.P)
	}
}

func TestKSTestRejectsWrongDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	xs := Sample(Exponential{Rate: 1}, 2000, r)
	res := KSTest(xs, Normal{Mu: 1, Sigma: 1})
	if res.P > 0.01 {
		t.Errorf("KS failed to reject wrong distribution: p=%g", res.P)
	}
}

func TestKSStatisticInUnitIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := Sample(Gamma{Shape: 2, Rate: 1}, 50+r.Intn(200), r)
		res := KSTest(xs, Uniform{A: 0, B: 1})
		return res.Statistic >= 0 && res.Statistic <= 1 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKSTestEmpty(t *testing.T) {
	res := KSTest(nil, Exponential{Rate: 1})
	if res.P != 1 || res.Statistic != 0 {
		t.Errorf("empty KS = %+v, want zero statistic, p=1", res)
	}
}

func TestKSTest2SameSource(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	xs := Sample(LogNormal{Mu: 0, Sigma: 1}, 1500, r)
	ys := Sample(LogNormal{Mu: 0, Sigma: 1}, 1500, r)
	res := KSTest2(xs, ys)
	if res.P < 0.01 {
		t.Errorf("two-sample KS rejected same source: p=%g", res.P)
	}
}

func TestKSTest2DifferentSource(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	xs := Sample(LogNormal{Mu: 0, Sigma: 1}, 1500, r)
	ys := Sample(LogNormal{Mu: 0.5, Sigma: 1}, 1500, r)
	res := KSTest2(xs, ys)
	if res.P > 0.01 {
		t.Errorf("two-sample KS failed to reject shifted source: p=%g", res.P)
	}
}

func TestKSTest2Empty(t *testing.T) {
	if res := KSTest2(nil, []float64{1}); res.P != 1 {
		t.Errorf("empty two-sample KS p = %g, want 1", res.P)
	}
}

func TestKSTest2ExactSmall(t *testing.T) {
	// Disjoint samples: D must be 1.
	res := KSTest2([]float64{1, 2, 3}, []float64{10, 11, 12})
	approx(t, res.Statistic, 1, 1e-12, "disjoint D")
	// Identical samples: D must be 0.
	res = KSTest2([]float64{1, 2, 3}, []float64{1, 2, 3})
	approx(t, res.Statistic, 0, 1e-12, "identical D")
}

func TestChiSquareTest(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	d := Gamma{Shape: 2, Rate: 1}
	xs := Sample(d, 5000, r)
	res := ChiSquareTest(xs, d, 20, 2)
	if res.P < 0.01 {
		t.Errorf("chi-square rejected true distribution: p=%g (stat=%g)", res.P, res.Statistic)
	}
	bad := ChiSquareTest(xs, Exponential{Rate: 0.5}, 20, 1)
	if bad.P > 0.01 {
		t.Errorf("chi-square failed to reject wrong distribution: p=%g", bad.P)
	}
	if e := ChiSquareTest(nil, d, 10, 0); e.P != 1 {
		t.Error("empty chi-square should have p=1")
	}
}

func TestChiSquareSF(t *testing.T) {
	// Known value: P(X^2_1 >= 3.841) ~ 0.05.
	approx(t, ChiSquareSF(3.841, 1), 0.05, 0.001, "chi2 critical 1df")
	approx(t, ChiSquareSF(0, 5), 1, 1e-12, "chi2 at 0")
}

func TestKolmogorovQ(t *testing.T) {
	approx(t, KolmogorovQ(0), 1, 1e-12, "Q(0)")
	// Known value: Q(1.36) ~ 0.049.
	approx(t, KolmogorovQ(1.36), 0.049, 0.002, "Q(1.36)")
	if q := KolmogorovQ(5); q > 1e-8 {
		t.Errorf("Q(5) = %g, want ~0", q)
	}
}

func TestGammaIncP(t *testing.T) {
	tests := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)},             // exponential CDF
		{1, 2, 1 - math.Exp(-2)},             //
		{0.5, 0.5, math.Erf(math.Sqrt(0.5))}, // chi2_1 at 1
		{5, 100, 1},
		{5, 0, 0},
	}
	for _, tt := range tests {
		approx(t, GammaIncP(tt.a, tt.x), tt.want, 1e-10, "GammaIncP")
	}
	for _, tt := range tests {
		approx(t, GammaIncQ(tt.a, tt.x), 1-tt.want, 1e-10, "GammaIncQ")
	}
	if !math.IsNaN(GammaIncP(-1, 1)) {
		t.Error("GammaIncP with a<=0 should be NaN")
	}
}

func TestDigammaTrigamma(t *testing.T) {
	const eulerGamma = 0.5772156649015329
	approx(t, Digamma(1), -eulerGamma, 1e-10, "psi(1)")
	approx(t, Digamma(2), 1-eulerGamma, 1e-10, "psi(2)")
	approx(t, Digamma(0.5), -eulerGamma-2*math.Ln2, 1e-10, "psi(1/2)")
	approx(t, Trigamma(1), math.Pi*math.Pi/6, 1e-10, "psi'(1)")
	if !math.IsNaN(Digamma(-1)) || !math.IsNaN(Trigamma(0)) {
		t.Error("digamma/trigamma outside domain should be NaN")
	}
}

func TestNormQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.8413447, 1},
	}
	for _, tt := range tests {
		approx(t, NormQuantile(tt.p), tt.want, 1e-5, "NormQuantile")
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile endpoint behavior wrong")
	}
}

func TestErfInvRoundTrip(t *testing.T) {
	for x := -0.999; x <= 0.999; x += 0.037 {
		approx(t, math.Erf(ErfInv(x)), x, 1e-12, "erf(erfinv)")
	}
	if ErfInv(0) != 0 {
		t.Error("ErfInv(0) != 0")
	}
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Error("ErfInv at +-1 should be +-Inf")
	}
}
