package stats

import (
	"fmt"
	"math"
	"sort"
)

// Minimal dense linear algebra needed by PCA, regression and the queueing
// solvers: a row-major matrix, multiplication, a symmetric eigen-solver
// (cyclic Jacobi) and a linear-system solver (Gaussian elimination with
// partial pivoting).

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix. It panics on non-positive
// dimensions (a programming error).
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("stats: matrix dimensions must be positive")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom builds a matrix from row slices, which must be rectangular.
func MatrixFrom(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrEmpty
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("stats: ragged matrix row %d: %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * other. The inner dimensions must agree.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("stats: matmul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			ok := other.Row(k)
			for j := range oi {
				oi[j] += a * ok[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m * v for a vector v of length m.Cols.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("stats: matvec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out, nil
}

// Eigen holds the result of a symmetric eigendecomposition: Values sorted
// descending, Vectors column k being the eigenvector of Values[k].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// EigenSym computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. Only the lower/upper symmetric content is used.
func EigenSym(a *Matrix) (Eigen, error) {
	if a.Rows != a.Cols {
		return Eigen{}, fmt.Errorf("stats: eigensym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values := make([]float64, n)
	vectors := NewMatrix(n, n)
	for k, p := range pairs {
		values[k] = p.val
		for i := 0; i < n; i++ {
			vectors.Set(i, k, v.At(i, p.idx))
		}
	}
	return Eigen{Values: values, Vectors: vectors}, nil
}

// SolveLinear solves a x = b by Gaussian elimination with partial pivoting.
// a must be square and is not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stats: solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("stats: solve rhs length %d, want %d", len(b), a.Rows)
	}
	return solveLU(a, b)
}

// solveLU performs Gaussian elimination with partial pivoting.
func solveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		piv := col
		maxAbs := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(w.At(r, col)); abs > maxAbs {
				maxAbs, piv = abs, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, fmt.Errorf("stats: singular matrix in solve (pivot %d)", col)
		}
		if piv != col {
			wc, wp := w.Row(col), w.Row(piv)
			for j := 0; j < n; j++ {
				wc[j], wp[j] = wp[j], wc[j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			wr, wc := w.Row(r), w.Row(col)
			for j := col; j < n; j++ {
				wr[j] -= f * wc[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		wr := w.Row(r)
		for j := r + 1; j < n; j++ {
			s -= wr[j] * x[j]
		}
		x[r] = s / wr[r]
	}
	return x, nil
}
