package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Error("Set/At mismatch")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("Row should alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Error("Clone should be independent")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 {
		t.Error("transpose wrong")
	}
}

func TestMatrixFrom(t *testing.T) {
	m, err := MatrixFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Error("MatrixFrom content wrong")
	}
	if _, err := MatrixFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input should fail")
	}
	if _, err := MatrixFrom(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFrom([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a, _ := MatrixFrom([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := MatrixFrom([][]float64{{2, 1}, {1, 2}})
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, eig.Values[0], 3, 1e-10, "largest eigenvalue")
	approx(t, eig.Values[1], 1, 1e-10, "smallest eigenvalue")
	// Eigenvector of 3 is (1,1)/sqrt2 up to sign.
	v0 := []float64{eig.Vectors.At(0, 0), eig.Vectors.At(1, 0)}
	if math.Abs(math.Abs(v0[0])-math.Sqrt2/2) > 1e-8 || math.Abs(v0[0]-v0[1]) > 1e-8 {
		t.Errorf("eigenvector of 3 = %v", v0)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	// A = V diag(w) V' for a random symmetric matrix.
	r := rand.New(rand.NewSource(50))
	const n = 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += eig.Vectors.At(i, k) * eig.Values[k] * eig.Vectors.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-8 {
				t.Fatalf("reconstruction error at (%d,%d): %g vs %g", i, j, s, a.At(i, j))
			}
		}
	}
	// Orthonormality of eigenvectors.
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += eig.Vectors.At(k, p) * eig.Vectors.At(k, q)
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("eigenvectors not orthonormal at (%d,%d): %g", p, q, dot)
			}
		}
	}
}

func TestEigenSymNonSquare(t *testing.T) {
	if _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("non-square eigen should fail")
	}
}

func TestSolveLinear(t *testing.T) {
	a, _ := MatrixFrom([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		approx(t, x[i], want[i], 1e-10, "solve solution")
	}
}

func TestSolveLinearErrors(t *testing.T) {
	sing, _ := MatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(sing, []float64{1, 2}); err == nil {
		t.Error("singular solve should fail")
	}
	if _, err := SolveLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square solve should fail")
	}
	sq := NewMatrix(2, 2)
	if _, err := SolveLinear(sq, []float64{1}); err == nil {
		t.Error("rhs length mismatch should fail")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		xWant := make([]float64, n)
		for i := range xWant {
			xWant[i] = r.NormFloat64()
		}
		b, err := a.MulVec(xWant)
		if err != nil {
			t.Fatal(err)
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			continue // singular random draw; acceptable
		}
		for i := range x {
			if math.Abs(x[i]-xWant[i]) > 1e-6 {
				t.Fatalf("trial %d: solve mismatch %v vs %v", trial, x, xWant)
			}
		}
	}
}
