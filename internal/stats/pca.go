package stats

import (
	"fmt"
	"math"
)

// Principal component analysis. The paper proposes PCA (alongside SVD,
// sampling and regression) to "reduce the dimensionality of feature-space,
// to the ones necessary for a representative and succinct model" (§4);
// Abrahao et al. use it to categorize CPU-utilization trace data.

// PCA holds a fitted principal-component transform.
type PCA struct {
	// Mean is the per-feature mean removed before projection.
	Mean []float64
	// Scale is the per-feature standard deviation (1 if zero) used when the
	// transform was fitted with standardization.
	Scale []float64
	// Components has one principal direction per column, ordered by
	// decreasing explained variance.
	Components *Matrix
	// Variances are the eigenvalues (explained variance per component).
	Variances []float64
}

// PCAOptions configures FitPCA.
type PCAOptions struct {
	// Standardize divides each feature by its standard deviation before the
	// eigendecomposition (correlation-matrix PCA). Recommended when features
	// have incomparable units (bytes vs. utilization).
	Standardize bool
}

// FitPCA fits a PCA on data (rows = observations, columns = features).
func FitPCA(data *Matrix, opts PCAOptions) (*PCA, error) {
	n, d := data.Rows, data.Cols
	if n < 2 {
		return nil, ErrShortSample
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j, x := range row {
			mean[j] += x
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	scale := make([]float64, d)
	for j := range scale {
		scale[j] = 1
	}
	if opts.Standardize {
		for i := 0; i < n; i++ {
			row := data.Row(i)
			for j, x := range row {
				dv := x - mean[j]
				scale[j] += dv * dv
			}
		}
		for j := range scale {
			s := math.Sqrt((scale[j] - 1) / float64(n-1))
			if s == 0 {
				s = 1
			}
			scale[j] = s
		}
	}
	// Covariance of the centered (and scaled) data.
	cov := NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < d; a++ {
			da := (row[a] - mean[a]) / scale[a]
			for b := a; b < d; b++ {
				db := (row[b] - mean[b]) / scale[b]
				cov.Data[a*d+b] += da * db
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) / float64(n-1)
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	eig, err := EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("stats: pca eigendecomposition: %w", err)
	}
	for i, v := range eig.Values {
		if v < 0 {
			eig.Values[i] = 0 // numerical noise on rank-deficient data
		}
	}
	return &PCA{Mean: mean, Scale: scale, Components: eig.Vectors, Variances: eig.Values}, nil
}

// ExplainedVarianceRatio returns the fraction of total variance captured by
// each component.
func (p *PCA) ExplainedVarianceRatio() []float64 {
	total := Sum(p.Variances)
	out := make([]float64, len(p.Variances))
	if total == 0 {
		return out
	}
	for i, v := range p.Variances {
		out[i] = v / total
	}
	return out
}

// ComponentsFor returns the smallest number of leading components whose
// cumulative explained variance reaches the given fraction (e.g. 0.95).
func (p *PCA) ComponentsFor(fraction float64) int {
	ratios := p.ExplainedVarianceRatio()
	var cum float64
	for i, r := range ratios {
		cum += r
		if cum >= fraction {
			return i + 1
		}
	}
	return len(ratios)
}

// Transform projects data (rows = observations) onto the first k principal
// components.
func (p *PCA) Transform(data *Matrix, k int) (*Matrix, error) {
	d := len(p.Mean)
	if data.Cols != d {
		return nil, fmt.Errorf("stats: pca transform feature mismatch %d, want %d", data.Cols, d)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("stats: pca transform k=%d out of range 1..%d", k, d)
	}
	out := NewMatrix(data.Rows, k)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for c := 0; c < k; c++ {
			var s float64
			for j := 0; j < d; j++ {
				s += ((row[j] - p.Mean[j]) / p.Scale[j]) * p.Components.At(j, c)
			}
			out.Set(i, c, s)
		}
	}
	return out, nil
}

// InverseTransform reconstructs approximate original features from a
// k-component projection.
func (p *PCA) InverseTransform(proj *Matrix) (*Matrix, error) {
	d := len(p.Mean)
	k := proj.Cols
	if k > d {
		return nil, fmt.Errorf("stats: pca inverse with %d components, max %d", k, d)
	}
	out := NewMatrix(proj.Rows, d)
	for i := 0; i < proj.Rows; i++ {
		prow := proj.Row(i)
		orow := out.Row(i)
		for j := 0; j < d; j++ {
			var s float64
			for c := 0; c < k; c++ {
				s += p.Components.At(j, c) * prow[c]
			}
			orow[j] = s*p.Scale[j] + p.Mean[j]
		}
	}
	return out, nil
}
