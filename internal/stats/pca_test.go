package stats

import (
	"math"
	"math/rand"
	"testing"
)

// corrData generates n observations of d features where the first two
// features are strongly correlated and the rest are small noise.
func corrData(n, d int, r *rand.Rand) *Matrix {
	m := NewMatrix(n, d)
	for i := 0; i < n; i++ {
		base := r.NormFloat64() * 10
		row := m.Row(i)
		row[0] = base + r.NormFloat64()*0.1
		row[1] = 2*base + r.NormFloat64()*0.1
		for j := 2; j < d; j++ {
			row[j] = r.NormFloat64() * 0.01
		}
	}
	return m
}

func TestFitPCAExplainsVariance(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	data := corrData(2000, 5, r)
	p, err := FitPCA(data, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratios := p.ExplainedVarianceRatio()
	if ratios[0] < 0.99 {
		t.Errorf("first component explains %g, want > 0.99", ratios[0])
	}
	approx(t, Sum(ratios), 1, 1e-9, "ratios sum to 1")
	if k := p.ComponentsFor(0.95); k != 1 {
		t.Errorf("ComponentsFor(0.95) = %d, want 1", k)
	}
	if k := p.ComponentsFor(1.0); k != 5 {
		t.Errorf("ComponentsFor(1.0) = %d, want 5", k)
	}
}

func TestPCATransformInverse(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	data := corrData(500, 4, r)
	p, err := FitPCA(data, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Full-rank round trip must reconstruct exactly.
	proj, err := p.Transform(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.InverseTransform(proj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Rows; i++ {
		for j := 0; j < data.Cols; j++ {
			if math.Abs(rec.At(i, j)-data.At(i, j)) > 1e-8 {
				t.Fatalf("full-rank reconstruction error at (%d,%d)", i, j)
			}
		}
	}
	// Rank-1 reconstruction should still be close (data is ~rank 1).
	proj1, err := p.Transform(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := p.InverseTransform(proj1)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := 0; i < data.Rows; i++ {
		for j := 0; j < data.Cols; j++ {
			d := rec1.At(i, j) - data.At(i, j)
			num += d * d
			den += data.At(i, j) * data.At(i, j)
		}
	}
	if num/den > 0.01 {
		t.Errorf("rank-1 reconstruction relative error %g, want < 0.01", num/den)
	}
}

func TestPCAStandardize(t *testing.T) {
	// With standardization, a feature with huge units should not dominate.
	r := rand.New(rand.NewSource(62))
	n := 1000
	data := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		data.Set(i, 0, r.NormFloat64()*1e9) // bytes-scale feature
		data.Set(i, 1, r.NormFloat64())     // utilization-scale feature
	}
	p, err := FitPCA(data, PCAOptions{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	ratios := p.ExplainedVarianceRatio()
	// Independent standardized features: both ~0.5.
	if ratios[0] > 0.6 {
		t.Errorf("standardized PCA dominated by one feature: %v", ratios)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(NewMatrix(1, 3), PCAOptions{}); err == nil {
		t.Error("single-row PCA should fail")
	}
	r := rand.New(rand.NewSource(63))
	data := corrData(50, 3, r)
	p, err := FitPCA(data, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(NewMatrix(5, 2), 1); err == nil {
		t.Error("feature mismatch should fail")
	}
	if _, err := p.Transform(data, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := p.Transform(data, 4); err == nil {
		t.Error("k>d should fail")
	}
	if _, err := p.InverseTransform(NewMatrix(5, 4)); err == nil {
		t.Error("too many components in inverse should fail")
	}
}

func TestFitLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 2, 1e-10, "slope")
	approx(t, fit.Intercept, 1, 1e-10, "intercept")
	approx(t, fit.R2, 1, 1e-10, "R2")
	approx(t, fit.Predict(10), 21, 1e-10, "predict")
	if _, err := FitLinear(x, y[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("short fit should fail")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * 10
		y[i] = 4 - 3*x[i] + r.NormFloat64()
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, -3, 0.05, "noisy slope")
	approx(t, fit.Intercept, 4, 0.1, "noisy intercept")
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %g, want > 0.9", fit.R2)
	}
}

func TestFitMultiLinear(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	n := 2000
	x := NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		y[i] = 2 + 1*row[0] - 2*row[1] + 0.5*row[2] + r.NormFloat64()*0.1
	}
	fit, err := FitMultiLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, -2, 0.5}
	for i, w := range want {
		approx(t, fit.Coef[i], w, 0.02, "multi coef")
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", fit.R2)
	}
	if _, err := FitMultiLinear(x, y[:5]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitMultiLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("underdetermined fit should fail")
	}
}
