package stats

import (
	"fmt"
)

// Ordinary least squares regression, used both directly (Patwardhan-style
// analytical throughput models; feature-space reduction via regression, §4)
// and internally by the Hurst estimators.

// LinearFit is a fitted simple linear regression y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLinear fits a simple linear regression of y on x by OLS.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: regression length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, ErrShortSample
	}
	slope, intercept := olsSlope(x, y)
	// R^2 = 1 - SS_res / SS_tot.
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// MultiFit is a fitted multiple linear regression
// y = Coef[0] + Coef[1]*x1 + ... + Coef[d]*xd.
type MultiFit struct {
	Coef []float64
	R2   float64
}

// FitMultiLinear fits y on the feature matrix x (rows = observations) by
// OLS using the normal equations.
func FitMultiLinear(x *Matrix, y []float64) (MultiFit, error) {
	n, d := x.Rows, x.Cols
	if n != len(y) {
		return MultiFit{}, fmt.Errorf("stats: regression length mismatch %d vs %d", n, len(y))
	}
	if n < d+1 {
		return MultiFit{}, ErrShortSample
	}
	// Design matrix with intercept column: solve (X'X) b = X'y.
	k := d + 1
	xtx := NewMatrix(k, k)
	xty := make([]float64, k)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for a := 0; a < k; a++ {
			xa := 1.0
			if a > 0 {
				xa = row[a-1]
			}
			xty[a] += xa * y[i]
			for b := a; b < k; b++ {
				xb := 1.0
				if b > 0 {
					xb = row[b-1]
				}
				xtx.Data[a*k+b] += xa * xb
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			xtx.Set(b, a, xtx.At(a, b))
		}
	}
	coef, err := SolveLinear(xtx, xty)
	if err != nil {
		return MultiFit{}, fmt.Errorf("stats: normal equations: %w", err)
	}
	fit := MultiFit{Coef: coef}
	my := Mean(y)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := fit.Predict(x.Row(i))
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	fit.R2 = 1.0
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// Predict evaluates the fitted hyperplane at the feature vector xs, which
// must have len(Coef)-1 entries.
func (f MultiFit) Predict(xs []float64) float64 {
	pred := f.Coef[0]
	for i, x := range xs {
		pred += f.Coef[i+1] * x
	}
	return pred
}
