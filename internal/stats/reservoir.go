package stats

import (
	"math/rand"
)

// Reservoir is a fixed-size uniform sample of an unbounded stream
// (Vitter's algorithm R) — the "statistical sampling" that lets SQS-style
// online characterization "scale well to thousands of machines" with
// bounded memory.
type Reservoir struct {
	sample []float64
	seen   int64
	r      *rand.Rand
}

// NewReservoir returns a reservoir keeping at most capacity observations.
// It panics on non-positive capacity (a programming error).
func NewReservoir(capacity int, r *rand.Rand) *Reservoir {
	if capacity < 1 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{sample: make([]float64, 0, capacity), r: r}
}

// Add offers one observation to the reservoir.
func (v *Reservoir) Add(x float64) {
	v.seen++
	if len(v.sample) < cap(v.sample) {
		v.sample = append(v.sample, x)
		return
	}
	// Replace a random element with probability capacity/seen.
	if j := v.r.Int63n(v.seen); j < int64(cap(v.sample)) {
		v.sample[j] = x
	}
}

// Seen returns the number of observations offered.
func (v *Reservoir) Seen() int64 { return v.seen }

// Len returns the current sample size (min(seen, capacity)).
func (v *Reservoir) Len() int { return len(v.sample) }

// Sample returns a copy of the retained sample.
func (v *Reservoir) Sample() []float64 {
	out := make([]float64, len(v.sample))
	copy(out, v.sample)
	return out
}

// Empirical returns the empirical distribution of the retained sample.
func (v *Reservoir) Empirical() (*Empirical, error) { return NewEmpirical(v.sample) }
