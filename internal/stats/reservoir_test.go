package stats

import (
	"math/rand"
	"testing"
)

func TestReservoirFillsThenBounds(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	v := NewReservoir(100, r)
	for i := 0; i < 50; i++ {
		v.Add(float64(i))
	}
	if v.Len() != 50 || v.Seen() != 50 {
		t.Errorf("len=%d seen=%d", v.Len(), v.Seen())
	}
	for i := 50; i < 10000; i++ {
		v.Add(float64(i))
	}
	if v.Len() != 100 {
		t.Errorf("len = %d, want capacity 100", v.Len())
	}
	if v.Seen() != 10000 {
		t.Errorf("seen = %d", v.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each stream element must survive with probability capacity/seen:
	// the retained sample of a U(0,1) stream is still U(0,1).
	r := rand.New(rand.NewSource(141))
	v := NewReservoir(2000, r)
	for i := 0; i < 200000; i++ {
		v.Add(r.Float64())
	}
	res := KSTest(v.Sample(), Uniform{A: 0, B: 1})
	if res.P < 0.001 {
		t.Errorf("reservoir sample rejected as uniform: p=%g", res.P)
	}
	// Positional uniformity: the mean index retained from a 0..N-1 stream
	// is ~N/2.
	v2 := NewReservoir(1000, r)
	const n = 100000
	for i := 0; i < n; i++ {
		v2.Add(float64(i))
	}
	m := Mean(v2.Sample())
	if m < 0.45*n || m > 0.55*n {
		t.Errorf("mean retained index %g, want ~%d", m, n/2)
	}
}

func TestReservoirEmpirical(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	v := NewReservoir(10, r)
	if _, err := v.Empirical(); err == nil {
		t.Error("empty reservoir should fail")
	}
	v.Add(1)
	v.Add(2)
	e, err := v.Empirical()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e.Mean(), 1.5, 1e-12, "empirical mean")
	// Sample returns a copy.
	s := v.Sample()
	s[0] = 99
	if v.Sample()[0] == 99 {
		t.Error("Sample should copy")
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir(0, rand.New(rand.NewSource(1)))
}
