package stats

import "math"

// Special functions used by the distribution family and the goodness-of-fit
// tests. Only what the substrate needs is implemented: the regularized
// incomplete gamma function (chi-square and gamma CDFs), the digamma
// function (gamma MLE), and the Kolmogorov distribution tail.

// GammaIncP returns the lower regularized incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0.
//
// The implementation follows Numerical Recipes: a series expansion for
// x < a+1 and a continued fraction for x >= a+1.
func GammaIncP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContFrac(a, x)
	}
}

// GammaIncQ returns the upper regularized incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContFrac(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContFrac evaluates Q(a,x) by its continued-fraction representation
// (x >= a+1) using modified Lentz's method.
func gammaContFrac(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Digamma returns the digamma function psi(x) = d/dx ln Gamma(x) for x > 0,
// via the recurrence psi(x) = psi(x+1) - 1/x and an asymptotic expansion.
func Digamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	var result float64
	for x < 10 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic series:
	// ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6) + 1/(240x^8).
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// Trigamma returns the trigamma function psi'(x) for x > 0, used by the
// Newton iteration in the gamma-distribution MLE.
func Trigamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	var result float64
	for x < 10 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic series:
	// 1/x + 1/(2x^2) + 1/(6x^3) - 1/(30x^5) + 1/(42x^7) - 1/(30x^9).
	result += inv + 0.5*inv2 +
		inv2*inv*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30)))
	return result
}

// KolmogorovQ returns the complementary CDF Q(lambda) = P(K > lambda) of the
// Kolmogorov distribution: Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1}
// exp(-2 j^2 lambda^2). It is used to convert a KS statistic into a p-value.
func KolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var (
		sum  float64
		sign = 1.0
		l2   = lambda * lambda
	)
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*l2)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum)+1e-300 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// ErfInv returns the inverse error function of x in (-1, 1), used for
// Gaussian quantiles. The implementation uses the rational approximation of
// Giles (2012) refined with one Newton step against math.Erf.
func ErfInv(x float64) float64 {
	switch {
	case math.IsNaN(x) || x <= -1 || x >= 1:
		if x == 1 {
			return math.Inf(1)
		}
		if x == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	case x == 0:
		return 0
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 6.25 {
		w -= 3.125
		p = -3.6444120640178196996e-21
		p = -1.685059138182016589e-19 + p*w
		p = 1.2858480715256400167e-18 + p*w
		p = 1.115787767802518096e-17 + p*w
		p = -1.333171662854620906e-16 + p*w
		p = 2.0972767875968561637e-17 + p*w
		p = 6.6376381343583238325e-15 + p*w
		p = -4.0545662729752068639e-14 + p*w
		p = -8.1519341976054721522e-14 + p*w
		p = 2.6335093153082322977e-12 + p*w
		p = -1.2975133253453532498e-11 + p*w
		p = -5.4154120542946279317e-11 + p*w
		p = 1.051212273321532285e-09 + p*w
		p = -4.1126339803469836976e-09 + p*w
		p = -2.9070369957882005086e-08 + p*w
		p = 4.2347877827932403518e-07 + p*w
		p = -1.3654692000834678645e-06 + p*w
		p = -1.3882523362786468719e-05 + p*w
		p = 0.0001867342080340571352 + p*w
		p = -0.00074070253416626697512 + p*w
		p = -0.0060336708714301490533 + p*w
		p = 0.24015818242558961693 + p*w
		p = 1.6536545626831027356 + p*w
	} else if w < 16 {
		w = math.Sqrt(w) - 3.25
		p = 2.2137376921775787049e-09
		p = 9.0756561938885390979e-08 + p*w
		p = -2.7517406297064545428e-07 + p*w
		p = 1.8239629214389227755e-08 + p*w
		p = 1.5027403968909827627e-06 + p*w
		p = -4.013867526981545969e-06 + p*w
		p = 2.9234449089955446044e-06 + p*w
		p = 1.2475304481671778723e-05 + p*w
		p = -4.7318229009055733981e-05 + p*w
		p = 6.8284851459573175448e-05 + p*w
		p = 2.4031110387097893999e-05 + p*w
		p = -0.0003550375203628474796 + p*w
		p = 0.00095328937973738049703 + p*w
		p = -0.0016882755560235047313 + p*w
		p = 0.0024914420961078508066 + p*w
		p = -0.0037512085075692412107 + p*w
		p = 0.005370914553590063617 + p*w
		p = 1.0052589676941592334 + p*w
		p = 3.0838856104922207635 + p*w
	} else {
		w = math.Sqrt(w) - 5
		p = -2.7109920616438573243e-11
		p = -2.5556418169965252055e-10 + p*w
		p = 1.5076572693500548083e-09 + p*w
		p = -3.7894654401267369937e-09 + p*w
		p = 7.6157012080783393804e-09 + p*w
		p = -1.4960026627149240478e-08 + p*w
		p = 2.9147953450901080826e-08 + p*w
		p = -6.7711997758452339498e-08 + p*w
		p = 2.2900482228026654717e-07 + p*w
		p = -9.9298272942317002539e-07 + p*w
		p = 4.5260625972231537039e-06 + p*w
		p = -1.9681778105531670567e-05 + p*w
		p = 7.5995277030017761139e-05 + p*w
		p = -0.00021503011930044477347 + p*w
		p = -0.00013871931833623122026 + p*w
		p = 1.0103004648645343977 + p*w
		p = 4.8499064014085844221 + p*w
	}
	r := p * x
	// One Newton refinement: f(r) = erf(r) - x.
	deriv := 2 / math.Sqrt(math.Pi) * math.Exp(-r*r)
	if deriv != 0 {
		r -= (math.Erf(r) - x) / deriv
	}
	return r
}

// NormQuantile returns the quantile function (inverse CDF) of the standard
// normal distribution.
func NormQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	return math.Sqrt2 * ErfInv(2*p-1)
}
