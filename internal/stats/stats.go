// Package stats is the statistics substrate for dcmodel.
//
// It provides, from scratch and on top of the standard library only, the
// statistical machinery that the datacenter workload-modeling literature
// reviewed by the paper relies on: descriptive statistics, histograms and
// empirical CDFs, a family of parametric distributions with maximum-
// likelihood fitting, goodness-of-fit tests (Kolmogorov-Smirnov,
// chi-square), time-series analysis (autocorrelation, burstiness,
// self-similarity via Hurst-exponent estimation), dimensionality reduction
// (PCA), regression, and clustering (k-means and Gaussian-mixture EM).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrShortSample is returned by estimators that require more observations
// than were supplied.
var ErrShortSample = errors.New("stats: sample too short")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns +Inf for an empty sample.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns -Inf for an empty sample.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the R and
// NumPy default). It returns NaN for an empty sample.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantileSorted is Quantile for data already in ascending order; it avoids
// the copy-and-sort. The caller must guarantee sortedness.
func QuantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Skewness returns the adjusted Fisher-Pearson sample skewness of xs.
// It returns 0 for samples with fewer than three observations or zero
// variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Kurtosis returns the excess sample kurtosis of xs (0 for a Gaussian).
// It returns 0 for samples with fewer than four observations or zero
// variance.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// CoefVar returns the coefficient of variation (std/mean) of xs, a standard
// burstiness indicator for service and interarrival times. It returns NaN
// when the mean is zero.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// SquaredCoefVar returns the squared coefficient of variation of xs
// (1 for exponential interarrivals; >1 indicates burstier-than-Poisson).
func SquaredCoefVar(xs []float64) float64 {
	cv := CoefVar(xs)
	return cv * cv
}

// Covariance returns the unbiased sample covariance of paired samples
// xs and ys, which must have equal length.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns 0 when either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// GeometricMean returns the geometric mean of xs; all observations must be
// positive, otherwise NaN is returned.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Summary aggregates the descriptive statistics most commonly reported for
// workload features (sizes, interarrival times, utilizations).
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	P25      float64
	Median   float64
	P75      float64
	P95      float64
	P99      float64
	Max      float64
	Skewness float64
	Kurtosis float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		StdDev:   StdDev(xs),
		Min:      sorted[0],
		P25:      quantileSorted(sorted, 0.25),
		Median:   quantileSorted(sorted, 0.5),
		P75:      quantileSorted(sorted, 0.75),
		P95:      quantileSorted(sorted, 0.95),
		P99:      quantileSorted(sorted, 0.99),
		Max:      sorted[len(sorted)-1],
		Skewness: Skewness(xs),
		Kurtosis: Kurtosis(xs),
	}
}

// RelError returns the relative deviation |got-want| / |want|, the metric the
// paper's Table 2 reports as "Variation". When want is zero it returns the
// absolute deviation |got|.
func RelError(want, got float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
