package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean(%v) = %g, want %g", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"constant", []float64{2, 2, 2}, 0},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 32.0 / 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			approx(t, Variance(tt.xs), tt.want, 1e-12, "Variance")
		})
	}
}

func TestPopVariance(t *testing.T) {
	approx(t, PopVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 4, 1e-12, "PopVariance")
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
	if got := Sum(xs); got != 9 {
		t.Errorf("Sum = %g, want 9", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		approx(t, Quantile(xs, tt.p), tt.want, 1e-12, "Quantile")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 0.01, 0.33, 0.5, 0.9, 0.999, 1} {
		approx(t, QuantileSorted(sorted, p), Quantile(xs, p), 1e-12, "QuantileSorted")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20+rr.Intn(50))
		for i := range xs {
			xs[i] = rr.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// A large symmetric Gaussian sample has ~0 skewness and ~0 excess
	// kurtosis.
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	approx(t, Skewness(xs), 0, 0.08, "gaussian skewness")
	approx(t, Kurtosis(xs), 0, 0.15, "gaussian kurtosis")

	// Exponential: skewness 2, excess kurtosis 6.
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	approx(t, Skewness(xs), 2, 0.25, "exponential skewness")
	approx(t, Kurtosis(xs), 6, 1.5, "exponential kurtosis")
}

func TestCoefVar(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	approx(t, CoefVar(xs), 1, 0.03, "exponential CV")
	approx(t, SquaredCoefVar(xs), 1, 0.06, "exponential SCV")
	if !math.IsNaN(CoefVar([]float64{0, 0})) {
		t.Error("CoefVar of zero-mean sample should be NaN")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Correlation(xs, ys), 1, 1e-12, "perfect positive correlation")
	zs := []float64{10, 8, 6, 4, 2}
	approx(t, Correlation(xs, zs), -1, 1e-12, "perfect negative correlation")
	if got := Correlation(xs, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Errorf("correlation with constant = %g, want 0", got)
	}
}

func TestGeometricMean(t *testing.T) {
	approx(t, GeometricMean([]float64{1, 4, 16}), 4, 1e-12, "geometric mean")
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Error("geometric mean with nonpositive data should be NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("geometric mean of empty sample should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "summary mean")
	approx(t, s.Min, 1, 1e-12, "summary min")
	approx(t, s.Max, 5, 1e-12, "summary max")
	approx(t, s.Median, 3, 1e-12, "summary median")
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary N = %d, want 0", got.N)
	}
}

func TestRelError(t *testing.T) {
	tests := []struct {
		want, got, expect float64
	}{
		{100, 110, 0.1},
		{100, 90, 0.1},
		{0, 0.5, 0.5},
		{-10, -11, 0.1},
	}
	for _, tt := range tests {
		approx(t, RelError(tt.want, tt.got), tt.expect, 1e-12, "RelError")
	}
}
