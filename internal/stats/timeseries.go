package stats

import (
	"math"
)

// Time-series analysis for arrival processes: autocorrelation and its
// portmanteau test, burstiness indices, and self-similarity (Hurst exponent)
// estimation. These are the request-stream characterizations that Feitelson,
// Li and Sengupta apply: stationarity, self-similarity, burstiness and
// short/long-range dependence.

// ACF returns the sample autocorrelation function of xs at lags 0..maxLag.
// The lag-0 value is always 1 for a non-degenerate series. Lags beyond
// len(xs)-1 are reported as 0.
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	out := make([]float64, maxLag+1)
	if n == 0 {
		return out
	}
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - m
		c0 += d * d
	}
	if c0 == 0 {
		out[0] = 1
		return out
	}
	out[0] = 1
	for lag := 1; lag <= maxLag && lag < n; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag] = c / c0
	}
	return out
}

// LjungBox computes the Ljung-Box portmanteau statistic over lags 1..maxLag
// and its p-value under the chi-square(maxLag) null of no autocorrelation
// (white noise). Small p rejects independence — evidence of short-range
// dependence in the arrival stream.
func LjungBox(xs []float64, maxLag int) (stat, p float64) {
	n := float64(len(xs))
	if n < 3 || maxLag < 1 {
		return 0, 1
	}
	acf := ACF(xs, maxLag)
	for k := 1; k <= maxLag; k++ {
		if n-float64(k) <= 0 {
			break
		}
		stat += acf[k] * acf[k] / (n - float64(k))
	}
	stat *= n * (n + 2)
	return stat, ChiSquareSF(stat, float64(maxLag))
}

// IndexOfDispersion returns the index of dispersion for counts (IDC) of an
// event time series: the variance-to-mean ratio of event counts in windows
// of the given length. IDC = 1 for a Poisson process; growing IDC with
// window size indicates burstiness and long-range dependence.
//
// arrivals must be ascending event timestamps.
func IndexOfDispersion(arrivals []float64, window float64) float64 {
	counts := CountsInWindows(arrivals, window)
	if len(counts) < 2 {
		return math.NaN()
	}
	m := Mean(counts)
	if m == 0 {
		return math.NaN()
	}
	return PopVariance(counts) / m
}

// CountsInWindows bins ascending event timestamps into consecutive windows
// of the given length and returns the per-window counts.
func CountsInWindows(arrivals []float64, window float64) []float64 {
	if len(arrivals) == 0 || window <= 0 {
		return nil
	}
	start := arrivals[0]
	end := arrivals[len(arrivals)-1]
	n := int((end-start)/window) + 1
	counts := make([]float64, n)
	for _, t := range arrivals {
		idx := int((t - start) / window)
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	return counts
}

// PeakToMean returns the peak-to-mean ratio of event counts in windows of
// the given length, a simple burstiness indicator.
func PeakToMean(arrivals []float64, window float64) float64 {
	counts := CountsInWindows(arrivals, window)
	if len(counts) == 0 {
		return math.NaN()
	}
	m := Mean(counts)
	if m == 0 {
		return math.NaN()
	}
	return Max(counts) / m
}

// HurstRS estimates the Hurst exponent of the series xs by rescaled-range
// (R/S) analysis. H = 0.5 for short-range-dependent series; H in (0.5, 1)
// indicates self-similarity / long-range dependence.
//
// The series is divided into blocks at logarithmically spaced sizes; within
// each block the rescaled range R/S is computed, and H is the slope of
// log(R/S) against log(block size).
func HurstRS(xs []float64) (float64, error) {
	n := len(xs)
	if n < 32 {
		return 0, ErrShortSample
	}
	var (
		logSizes []float64
		logRS    []float64
	)
	for size := 8; size <= n/4; size = int(float64(size)*1.5) + 1 {
		blocks := n / size
		var rsSum float64
		var rsCount int
		for b := 0; b < blocks; b++ {
			block := xs[b*size : (b+1)*size]
			rs := rescaledRange(block)
			if !math.IsNaN(rs) && rs > 0 {
				rsSum += rs
				rsCount++
			}
		}
		if rsCount == 0 {
			continue
		}
		logSizes = append(logSizes, math.Log(float64(size)))
		logRS = append(logRS, math.Log(rsSum/float64(rsCount)))
	}
	if len(logSizes) < 3 {
		return 0, ErrShortSample
	}
	slope, _ := olsSlope(logSizes, logRS)
	return slope, nil
}

func rescaledRange(block []float64) float64 {
	m := Mean(block)
	var (
		cum, minCum, maxCum float64
	)
	for _, x := range block {
		cum += x - m
		if cum < minCum {
			minCum = cum
		}
		if cum > maxCum {
			maxCum = cum
		}
	}
	r := maxCum - minCum
	s := math.Sqrt(PopVariance(block))
	if s == 0 {
		return math.NaN()
	}
	return r / s
}

// HurstAggVar estimates the Hurst exponent by the aggregate-variance method:
// the variance of the m-aggregated series scales as m^(2H-2).
func HurstAggVar(xs []float64) (float64, error) {
	n := len(xs)
	if n < 32 {
		return 0, ErrShortSample
	}
	var logM, logV []float64
	for m := 1; m <= n/8; m = int(float64(m)*1.7) + 1 {
		agg := aggregate(xs, m)
		if len(agg) < 4 {
			break
		}
		v := PopVariance(agg)
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, math.Log(v))
	}
	if len(logM) < 3 {
		return 0, ErrShortSample
	}
	slope, _ := olsSlope(logM, logV)
	return 1 + slope/2, nil
}

// aggregate averages xs over consecutive blocks of length m.
func aggregate(xs []float64, m int) []float64 {
	if m <= 1 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	n := len(xs) / m
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Mean(xs[i*m : (i+1)*m])
	}
	return out
}

// olsSlope returns the ordinary-least-squares slope and intercept of y on x.
func olsSlope(x, y []float64) (slope, intercept float64) {
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}

// SelfSimilarity summarizes the self-similarity diagnostics of an arrival
// time series: both Hurst estimators plus the IDC at two window scales.
type SelfSimilarity struct {
	HurstRS     float64
	HurstAggVar float64
	IDCShort    float64
	IDCLong     float64
	PeakToMean  float64
}

// AnalyzeSelfSimilarity computes SelfSimilarity for ascending arrival
// timestamps using the given base window; the long window is 16x the base.
func AnalyzeSelfSimilarity(arrivals []float64, window float64) (SelfSimilarity, error) {
	counts := CountsInWindows(arrivals, window)
	if len(counts) < 32 {
		return SelfSimilarity{}, ErrShortSample
	}
	hrs, err := HurstRS(counts)
	if err != nil {
		return SelfSimilarity{}, err
	}
	hav, err := HurstAggVar(counts)
	if err != nil {
		return SelfSimilarity{}, err
	}
	return SelfSimilarity{
		HurstRS:     hrs,
		HurstAggVar: hav,
		IDCShort:    IndexOfDispersion(arrivals, window),
		IDCLong:     IndexOfDispersion(arrivals, window*16),
		PeakToMean:  PeakToMean(arrivals, window),
	}, nil
}
