package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestACFWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	xs := Sample(Normal{Mu: 0, Sigma: 1}, 5000, r)
	acf := ACF(xs, 10)
	approx(t, acf[0], 1, 1e-12, "acf lag 0")
	for lag := 1; lag <= 10; lag++ {
		if math.Abs(acf[lag]) > 0.05 {
			t.Errorf("white-noise ACF at lag %d = %g, want ~0", lag, acf[lag])
		}
	}
}

func TestACFAR1(t *testing.T) {
	// AR(1) with phi=0.8 has ACF(k) = 0.8^k.
	r := rand.New(rand.NewSource(41))
	const phi = 0.8
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + r.NormFloat64()
	}
	acf := ACF(xs, 5)
	for lag := 1; lag <= 5; lag++ {
		want := math.Pow(phi, float64(lag))
		approx(t, acf[lag], want, 0.03, "AR(1) ACF")
	}
}

func TestACFEdgeCases(t *testing.T) {
	if acf := ACF(nil, 3); len(acf) != 4 || acf[0] != 0 {
		t.Error("ACF of empty series should be zeros of length maxLag+1")
	}
	constant := ACF([]float64{2, 2, 2, 2}, 2)
	if constant[0] != 1 || constant[1] != 0 {
		t.Error("ACF of constant series should be [1 0 0]")
	}
}

func TestLjungBox(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	white := Sample(Normal{Mu: 0, Sigma: 1}, 2000, r)
	_, p := LjungBox(white, 10)
	if p < 0.01 {
		t.Errorf("Ljung-Box rejected white noise: p=%g", p)
	}
	ar := make([]float64, 2000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.7*ar[i-1] + r.NormFloat64()
	}
	_, p = LjungBox(ar, 10)
	if p > 0.001 {
		t.Errorf("Ljung-Box failed to reject AR(1): p=%g", p)
	}
	if _, p := LjungBox([]float64{1, 2}, 5); p != 1 {
		t.Error("short Ljung-Box should return p=1")
	}
}

func poissonArrivals(rate float64, n int, r *rand.Rand) []float64 {
	arr := make([]float64, n)
	var t float64
	for i := range arr {
		t += r.ExpFloat64() / rate
		arr[i] = t
	}
	return arr
}

func TestIndexOfDispersionPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	arr := poissonArrivals(10, 50000, r)
	idc := IndexOfDispersion(arr, 1)
	approx(t, idc, 1, 0.1, "Poisson IDC")
}

func TestIndexOfDispersionBursty(t *testing.T) {
	// An on/off bursty process has IDC >> 1.
	r := rand.New(rand.NewSource(44))
	var arr []float64
	var now float64
	for burst := 0; burst < 500; burst++ {
		for i := 0; i < 100; i++ {
			now += r.ExpFloat64() / 100 // fast arrivals in burst
			arr = append(arr, now)
		}
		now += 10 + r.ExpFloat64()*5 // long off period
	}
	idc := IndexOfDispersion(arr, 1)
	if idc < 5 {
		t.Errorf("bursty IDC = %g, want >> 1", idc)
	}
	if !math.IsNaN(IndexOfDispersion(nil, 1)) {
		t.Error("empty IDC should be NaN")
	}
}

func TestCountsInWindows(t *testing.T) {
	arr := []float64{0, 0.5, 0.9, 1.1, 2.5}
	counts := CountsInWindows(arr, 1)
	want := []float64{3, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %g, want %g", i, counts[i], want[i])
		}
	}
	if CountsInWindows(nil, 1) != nil || CountsInWindows(arr, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestPeakToMean(t *testing.T) {
	arr := []float64{0, 0.1, 0.2, 1.5, 2.5}
	// windows: [0,1): 3, [1,2): 1, [2,3): 1 → mean 5/3, peak 3.
	approx(t, PeakToMean(arr, 1), 3/(5.0/3.0), 1e-12, "peak-to-mean")
	if !math.IsNaN(PeakToMean(nil, 1)) {
		t.Error("empty peak-to-mean should be NaN")
	}
}

func TestHurstWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	xs := Sample(Normal{Mu: 0, Sigma: 1}, 8192, r)
	h, err := HurstRS(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.4 || h > 0.65 {
		t.Errorf("white-noise Hurst (R/S) = %g, want ~0.5", h)
	}
	hv, err := HurstAggVar(xs)
	if err != nil {
		t.Fatal(err)
	}
	if hv < 0.35 || hv > 0.65 {
		t.Errorf("white-noise Hurst (aggvar) = %g, want ~0.5", hv)
	}
}

// fgnLike produces a long-range-dependent series by superposing AR(1)
// components at multiple timescales (an approximation of fractional
// Gaussian noise adequate to drive the estimators above 0.5).
func fgnLike(n int, r *rand.Rand) []float64 {
	xs := make([]float64, n)
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	states := make([]float64, len(phis))
	for i := 0; i < n; i++ {
		var v float64
		for j, phi := range phis {
			states[j] = phi*states[j] + r.NormFloat64()*math.Sqrt(1-phi*phi)
			v += states[j]
		}
		xs[i] = v
	}
	return xs
}

func TestHurstLongRangeDependence(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	xs := fgnLike(16384, r)
	h, err := HurstRS(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.65 {
		t.Errorf("LRD Hurst (R/S) = %g, want > 0.65", h)
	}
	hv, err := HurstAggVar(xs)
	if err != nil {
		t.Fatal(err)
	}
	if hv < 0.6 {
		t.Errorf("LRD Hurst (aggvar) = %g, want > 0.6", hv)
	}
}

func TestHurstShortSample(t *testing.T) {
	if _, err := HurstRS(make([]float64, 10)); err == nil {
		t.Error("short HurstRS should fail")
	}
	if _, err := HurstAggVar(make([]float64, 10)); err == nil {
		t.Error("short HurstAggVar should fail")
	}
}

func TestAnalyzeSelfSimilarity(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	arr := poissonArrivals(20, 20000, r)
	ss, err := AnalyzeSelfSimilarity(arr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ss.HurstRS > 0.7 {
		t.Errorf("Poisson arrivals HurstRS = %g, want ~0.5", ss.HurstRS)
	}
	if ss.IDCShort > 1.5 {
		t.Errorf("Poisson IDC = %g, want ~1", ss.IDCShort)
	}
	if _, err := AnalyzeSelfSimilarity([]float64{1, 2}, 1); err == nil {
		t.Error("short self-similarity analysis should fail")
	}
}
