package stats

import (
	"fmt"
	"math/rand"
)

// VUList is Luthi's multi-dimensional histogram ("VU-list"): a collection
// of parameter vectors — e.g. (arrival rate, CPU demand, I/O demand) —
// binned jointly, so correlations between job characteristics survive
// where independent per-feature histograms would lose them. Luthi proposes
// them for characterizing workload parameters in Web applications and for
// the analysis of closed queueing networks.
type VUList struct {
	// Dims is the number of features per vector.
	Dims int
	// Lo and Hi are the per-feature bin ranges.
	Lo, Hi []float64
	// BinsPerDim is the number of bins per feature.
	BinsPerDim int
	// Counts maps a flattened cell index to its observation count.
	Counts map[int]int64
	// total observations.
	total int64
	// cellSamples retains up to sampleCap observed vectors per cell for
	// within-cell resampling.
	cellSamples map[int][][]float64
}

const vuCellSampleCap = 32

// NewVUList builds a VU-list over vectors (rows of data) with the given
// bins per dimension.
func NewVUList(data [][]float64, binsPerDim int) (*VUList, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if binsPerDim < 1 {
		return nil, fmt.Errorf("stats: vu-list needs >= 1 bin per dim, got %d", binsPerDim)
	}
	dims := len(data[0])
	if dims == 0 {
		return nil, fmt.Errorf("stats: vu-list needs >= 1 dimension")
	}
	v := &VUList{
		Dims:        dims,
		Lo:          make([]float64, dims),
		Hi:          make([]float64, dims),
		BinsPerDim:  binsPerDim,
		Counts:      make(map[int]int64),
		cellSamples: make(map[int][][]float64),
	}
	for d := 0; d < dims; d++ {
		v.Lo[d] = data[0][d]
		v.Hi[d] = data[0][d]
	}
	for i, row := range data {
		if len(row) != dims {
			return nil, fmt.Errorf("stats: vu-list row %d has %d dims, want %d", i, len(row), dims)
		}
		for d, x := range row {
			if x < v.Lo[d] {
				v.Lo[d] = x
			}
			if x > v.Hi[d] {
				v.Hi[d] = x
			}
		}
	}
	for d := 0; d < dims; d++ {
		if v.Hi[d] <= v.Lo[d] {
			v.Hi[d] = v.Lo[d] + 1
		}
	}
	for _, row := range data {
		cell := v.cellOf(row)
		v.Counts[cell]++
		v.total++
		if s := v.cellSamples[cell]; len(s) < vuCellSampleCap {
			cp := make([]float64, dims)
			copy(cp, row)
			v.cellSamples[cell] = append(s, cp)
		}
	}
	return v, nil
}

// cellOf maps a vector to its flattened cell index.
func (v *VUList) cellOf(row []float64) int {
	idx := 0
	for d, x := range row {
		b := int(float64(v.BinsPerDim) * (x - v.Lo[d]) / (v.Hi[d] - v.Lo[d]))
		if b < 0 {
			b = 0
		}
		if b >= v.BinsPerDim {
			b = v.BinsPerDim - 1
		}
		idx = idx*v.BinsPerDim + b
	}
	return idx
}

// Total returns the number of recorded vectors.
func (v *VUList) Total() int64 { return v.total }

// Cells returns the number of non-empty cells — the list's compactness.
func (v *VUList) Cells() int { return len(v.Counts) }

// Prob returns the empirical probability mass of the cell containing row.
func (v *VUList) Prob(row []float64) float64 {
	if v.total == 0 {
		return 0
	}
	return float64(v.Counts[v.cellOf(row)]) / float64(v.total)
}

// Sample draws a synthetic vector: a cell by its mass, then one of the
// retained vectors of that cell (jittered resampling preserves the joint
// structure).
func (v *VUList) Sample(r *rand.Rand) []float64 {
	target := r.Int63n(v.total)
	var cum int64
	var chosen int
	// Deterministic cell order is unnecessary here: the draw is by mass,
	// and map iteration randomness is absorbed by the random target.
	for cell, n := range v.Counts {
		cum += n
		chosen = cell
		if target < cum {
			break
		}
	}
	samples := v.cellSamples[chosen]
	row := samples[r.Intn(len(samples))]
	out := make([]float64, len(row))
	copy(out, row)
	return out
}

// MarginalMean returns the mean of feature d over the retained samples
// weighted by cell mass (approximates the data's marginal mean).
func (v *VUList) MarginalMean(d int) (float64, error) {
	if d < 0 || d >= v.Dims {
		return 0, fmt.Errorf("stats: vu-list dimension %d out of range", d)
	}
	var sum, weight float64
	for cell, n := range v.Counts {
		samples := v.cellSamples[cell]
		if len(samples) == 0 {
			continue
		}
		var cellMean float64
		for _, row := range samples {
			cellMean += row[d]
		}
		cellMean /= float64(len(samples))
		sum += cellMean * float64(n)
		weight += float64(n)
	}
	if weight == 0 {
		return 0, ErrEmpty
	}
	return sum / weight, nil
}
