package trace

// SpanArena carves per-request span slices out of large chunks, replacing
// the per-request make+growslice churn that dominates synthesis profiles.
// An arena belongs to one synthesis call (it is not safe for concurrent
// use); the requests it backed stay valid after the arena is dropped, since
// chunks are never recycled — a full chunk is simply abandoned to its
// requests and a fresh one started.
type SpanArena struct {
	chunk []Span
}

// arenaChunkSpans is the default chunk size: large enough that a typical
// synthesis run allocates thousands of requests per chunk, small enough
// (~100 KB) that an abandoned tail wastes little.
const arenaChunkSpans = 1024

// Take returns an empty span slice with capacity exactly n, carved from
// the arena. The capacity is capped with a three-index slice, so a caller
// that appends beyond n gets a private reallocated slice instead of
// clobbering the next request's spans.
// Reserve sizes the arena so the next n spans' worth of Take calls carve
// from one contiguous chunk with no further allocation. Batch producers
// (SynthesizeBatch, the trace-v2 block decoder) call it once per batch.
func (a *SpanArena) Reserve(n int) {
	if n > cap(a.chunk)-len(a.chunk) {
		a.chunk = make([]Span, 0, n)
	}
}

func (a *SpanArena) Take(n int) []Span {
	if n <= 0 {
		return nil
	}
	if cap(a.chunk)-len(a.chunk) < n {
		size := arenaChunkSpans
		if n > size {
			size = n
		}
		a.chunk = make([]Span, 0, size)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[:start+n]
	return a.chunk[start:start:(start + n)]
}
