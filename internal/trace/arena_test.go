package trace

import "testing"

func TestSpanArenaTake(t *testing.T) {
	var a SpanArena
	s := a.Take(4)
	if len(s) != 0 || cap(s) != 4 {
		t.Fatalf("Take(4) = len %d cap %d, want 0/4", len(s), cap(s))
	}
	if a.Take(0) != nil || a.Take(-1) != nil {
		t.Fatal("Take of non-positive n should be nil")
	}
}

// TestSpanArenaIsolation checks that appending past a taken slice's
// capacity cannot clobber a neighboring request's spans.
func TestSpanArenaIsolation(t *testing.T) {
	var a SpanArena
	first := a.Take(2)
	first = append(first, Span{Bank: 1}, Span{Bank: 2})
	second := a.Take(2)
	second = append(second, Span{Bank: 3}, Span{Bank: 4})
	// Overflow the first slice: the append must copy out of the arena.
	first = append(first, Span{Bank: 99})
	if second[0].Bank != 3 || second[1].Bank != 4 {
		t.Fatalf("overflowing one slice clobbered its neighbor: %+v", second)
	}
	if first[2].Bank != 99 {
		t.Fatalf("overflow append lost the new span: %+v", first)
	}
}

// TestSpanArenaChunkRollover checks that slices stay valid and zeroed
// across chunk boundaries, including requests larger than a whole chunk.
func TestSpanArenaChunkRollover(t *testing.T) {
	var a SpanArena
	var taken [][]Span
	for i := 0; i < 3*arenaChunkSpans/5; i++ {
		s := a.Take(5)
		for j := 0; j < 5; j++ {
			if cap(s) != 5 {
				t.Fatalf("take %d: cap %d, want 5", i, cap(s))
			}
			s = append(s, Span{Bank: i})
		}
		taken = append(taken, s)
	}
	big := a.Take(2 * arenaChunkSpans)
	if cap(big) != 2*arenaChunkSpans {
		t.Fatalf("oversized take has cap %d", cap(big))
	}
	for i, s := range taken {
		for j := range s {
			if s[j].Bank != i {
				t.Fatalf("take %d span %d has bank %d", i, j, s[j].Bank)
			}
		}
	}
}
