package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// trace-v2: the compact binary columnar span codec. CSV stays the
// interchange format (human-readable, trivially diffable); trace-v2 is the
// hot-path format for daemon ingest and bulk trace files (.dct), encoding
// and decoding several times faster than CSV at a fraction of the size.
//
// Wire layout:
//
//	stream  := magic version block* end
//	magic   := "DCT2"                    (4 bytes)
//	version := 0x01                      (1 byte)
//	block   := 0x01 uvarint(len) payload (len = payload bytes)
//	end     := 0x00
//
// A block holds up to binaryBlockRequests requests, column-per-field:
// every request field (then every span field) is stored contiguously, so
// each column's values compress and decode together. Integer columns are
// varints (zigzag where negatives are legal); float columns XOR the IEEE
// bits of consecutive values and uvarint-encode the result — a delta scheme
// that is exactly lossless and collapses repeated values (a synthetic
// trace's zero durations, a request's shared span starts) to one byte;
// Retries stay varints while the FailedOver flags pack into a bitmap and
// the 2-bit subsystem/op enums pack four to a byte. Request classes are
// block-local dictionary references.
//
// The codec is lossless against the in-memory Trace in both directions:
// CSV -> binary -> CSV reproduces the canonical CSV byte for byte
// (including traces parsed from the legacy 12-column CSV layout, which
// decode with zero failure annotations like SpanReader does).

// Magic/version constants of the trace-v2 stream.
const (
	binaryMagic   = "DCT2"
	binaryVersion = 1

	// markerBlock and markerEnd delimit the block sequence.
	markerBlock = 0x01
	markerEnd   = 0x00
)

// ContentTypeV2 is the HTTP media type of a trace-v2 stream, negotiated by
// the daemon's ingest/replay endpoints (CSV remains the default).
const ContentTypeV2 = "application/x-dcmodel-trace-v2"

// Writer-side flush thresholds: a block closes when either is reached, so
// blocks stay small enough to stream but large enough to amortize the
// header and dictionary.
const (
	binaryBlockRequests = 1024
	binaryBlockSpans    = 1 << 14
)

// Reader-side hardening bounds; inputs past them are malformed, not big.
const (
	maxBinaryBlockBytes    = 1 << 26 // one block payload
	maxBinaryBlockRequests = 1 << 20
	maxBinaryClassBytes    = maxCSVFieldBytes // same class-label bound as CSV
)

// WriteBinary writes the trace as one trace-v2 stream. It is the binary
// sibling of WriteCSV: same span schema, block-columnar layout.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := newBinaryBlockWriter(w)
	if err := bw.writeHeader(); err != nil {
		return err
	}
	for i := range t.Requests {
		if err := bw.add(&t.Requests[i]); err != nil {
			return err
		}
	}
	return bw.close()
}

// ReadBinary reads a trace written by WriteBinary. It is the batch wrapper
// around the streaming BinarySpanReader, so both share one decoding path.
func ReadBinary(r io.Reader) (*Trace, error) {
	d := NewBinarySpanReader(r)
	t := &Trace{}
	for {
		req, err := d.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, req)
	}
}

// binaryBlockWriter accumulates requests and flushes them as columnar
// blocks. All scratch buffers are reused across blocks, so encoding a large
// trace allocates a handful of buffers total.
type binaryBlockWriter struct {
	w io.Writer

	reqs  []*Request
	spans int

	// classIdx and classes are the block-local dictionary.
	classIdx map[string]int
	classes  []string

	// payload assembles one block; head assembles the marker+length prefix.
	payload []byte
	head    []byte
}

func newBinaryBlockWriter(w io.Writer) *binaryBlockWriter {
	return &binaryBlockWriter{
		w:        w,
		classIdx: make(map[string]int),
	}
}

func (bw *binaryBlockWriter) writeHeader() error {
	if _, err := io.WriteString(bw.w, binaryMagic+string(rune(binaryVersion))); err != nil {
		return fmt.Errorf("trace: write binary header: %w", err)
	}
	return nil
}

func (bw *binaryBlockWriter) add(r *Request) error {
	bw.reqs = append(bw.reqs, r)
	bw.spans += len(r.Spans)
	if len(bw.reqs) >= binaryBlockRequests || bw.spans >= binaryBlockSpans {
		return bw.flush()
	}
	return nil
}

func (bw *binaryBlockWriter) close() error {
	if err := bw.flush(); err != nil {
		return err
	}
	if _, err := bw.w.Write([]byte{markerEnd}); err != nil {
		return fmt.Errorf("trace: write binary end marker: %w", err)
	}
	return nil
}

// uv/sv/fbits append one uvarint / zigzag varint / XOR-delta float.
func uv(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func sv(b []byte, v int64) []byte  { return binary.AppendVarint(b, v) }

func fbits(b []byte, v float64, prev *uint64) []byte {
	bits := math.Float64bits(v)
	b = binary.AppendUvarint(b, bits^*prev)
	*prev = bits
	return b
}

// flush encodes the buffered requests as one block.
func (bw *binaryBlockWriter) flush() error {
	if len(bw.reqs) == 0 {
		return nil
	}
	p := bw.payload[:0]
	p = uv(p, uint64(len(bw.reqs)))
	p = uv(p, uint64(bw.spans))

	// Block-local class dictionary, first-seen order (deterministic).
	bw.classes = bw.classes[:0]
	clear(bw.classIdx)
	for _, r := range bw.reqs {
		if _, ok := bw.classIdx[r.Class]; !ok {
			bw.classIdx[r.Class] = len(bw.classes)
			bw.classes = append(bw.classes, r.Class)
		}
	}
	p = uv(p, uint64(len(bw.classes)))
	for _, c := range bw.classes {
		if len(c) > maxBinaryClassBytes {
			return fmt.Errorf("trace: class label of %d bytes exceeds the %d-byte limit", len(c), maxBinaryClassBytes)
		}
		p = uv(p, uint64(len(c)))
		p = append(p, c...)
	}

	// Request columns.
	var prevID int64
	for i, r := range bw.reqs {
		if i == 0 {
			p = sv(p, r.ID)
		} else {
			p = sv(p, r.ID-prevID)
		}
		prevID = r.ID
	}
	for _, r := range bw.reqs {
		p = uv(p, uint64(bw.classIdx[r.Class]))
	}
	for _, r := range bw.reqs {
		p = sv(p, int64(r.Server))
	}
	var prevF uint64
	for _, r := range bw.reqs {
		p = fbits(p, r.Arrival, &prevF)
	}
	for _, r := range bw.reqs {
		if r.Retries < 0 {
			return fmt.Errorf("trace: request %d has negative retries %d", r.ID, r.Retries)
		}
		p = uv(p, uint64(r.Retries))
	}
	p = appendBitmap(p, len(bw.reqs), func(i int) bool { return bw.reqs[i].FailedOver })
	for _, r := range bw.reqs {
		p = uv(p, uint64(len(r.Spans)))
	}

	// Span columns. The 2-bit enums are validated here: like the CSV codec
	// (whose String/Parse pair rejects them on the way back in), unknown
	// subsystems or ops cannot be represented.
	var err error
	p, err = appendPacked2(p, bw.reqs, func(s *Span) (uint8, error) {
		if s.Subsystem < 0 || s.Subsystem >= numSubsystems {
			return 0, fmt.Errorf("trace: span has invalid subsystem %d", s.Subsystem)
		}
		return uint8(s.Subsystem), nil
	})
	if err != nil {
		return err
	}
	p, err = appendPacked2(p, bw.reqs, func(s *Span) (uint8, error) {
		if s.Op < OpNone || s.Op > OpWrite {
			return 0, fmt.Errorf("trace: span has invalid op %d", s.Op)
		}
		return uint8(s.Op), nil
	})
	if err != nil {
		return err
	}
	prevF = 0
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = fbits(p, r.Spans[i].Start, &prevF)
		}
	}
	prevF = 0
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = fbits(p, r.Spans[i].Duration, &prevF)
		}
	}
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = sv(p, r.Spans[i].Bytes)
		}
	}
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = sv(p, r.Spans[i].LBN)
		}
	}
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = sv(p, int64(r.Spans[i].Bank))
		}
	}
	prevF = 0
	for _, r := range bw.reqs {
		for i := range r.Spans {
			p = fbits(p, r.Spans[i].Util, &prevF)
		}
	}

	bw.payload = p
	bw.head = uv(append(bw.head[:0], markerBlock), uint64(len(p)))
	if _, err := bw.w.Write(bw.head); err != nil {
		return fmt.Errorf("trace: write binary block: %w", err)
	}
	if _, err := bw.w.Write(p); err != nil {
		return fmt.Errorf("trace: write binary block: %w", err)
	}
	bw.reqs = bw.reqs[:0]
	bw.spans = 0
	return nil
}

// appendBitmap packs n booleans LSB-first into ceil(n/8) bytes.
func appendBitmap(p []byte, n int, bit func(i int) bool) []byte {
	var cur byte
	for i := 0; i < n; i++ {
		if bit(i) {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			p = append(p, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		p = append(p, cur)
	}
	return p
}

// appendPacked2 packs one 2-bit value per span, four to a byte, LSB-first.
func appendPacked2(p []byte, reqs []*Request, val func(*Span) (uint8, error)) ([]byte, error) {
	var cur byte
	var i int
	for _, r := range reqs {
		for j := range r.Spans {
			v, err := val(&r.Spans[j])
			if err != nil {
				return nil, err
			}
			cur |= v << ((i % 4) * 2)
			if i%4 == 3 {
				p = append(p, cur)
				cur = 0
			}
			i++
		}
	}
	if i%4 != 0 {
		p = append(p, cur)
	}
	return p, nil
}

// BinarySpanReader incrementally decodes a trace-v2 stream, one block at a
// time, handing out requests with the same streaming contract as the CSV
// SpanReader: Next returns each request as soon as its block has been read,
// io.EOF after the end marker, and any defect as a sticky error. It never
// panics on malformed input and spawns no goroutines.
type BinarySpanReader struct {
	r       io.Reader
	started bool
	err     error

	// pending holds the decoded requests of the current block.
	pending []Request
	next    int

	// payload is the reused block read buffer; arena carves span slices.
	payload []byte
	scratch blockScratch
	arena   SpanArena
}

// blockScratch holds the reusable per-block column slices.
type blockScratch struct {
	classes  []string
	spanCnt  []int
	one      [1]byte
	spans    []Span // set per block to the arena reservation
	spanNext int
}

// NewBinarySpanReader returns a streaming trace-v2 decoder reading from r.
// The header is consumed and checked on the first call to Next.
func NewBinarySpanReader(r io.Reader) *BinarySpanReader {
	return &BinarySpanReader{r: r}
}

func (d *BinarySpanReader) fail(err error) (Request, error) {
	d.err = err
	return Request{}, err
}

// Next returns the next decoded request, or io.EOF when the stream ends
// cleanly (after the end marker). Errors are sticky.
func (d *BinarySpanReader) Next() (Request, error) {
	if d.err != nil {
		return Request{}, d.err
	}
	if !d.started {
		if err := d.readHeader(); err != nil {
			return d.fail(err)
		}
		d.started = true
	}
	for d.next >= len(d.pending) {
		if err := d.readBlock(); err != nil {
			return d.fail(err)
		}
	}
	req := d.pending[d.next]
	d.pending[d.next] = Request{} // drop the reference early
	d.next++
	return req, nil
}

func (d *BinarySpanReader) readHeader() error {
	var hdr [5]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return fmt.Errorf("trace: read binary header: %w", err)
	}
	if string(hdr[:4]) != binaryMagic {
		return fmt.Errorf("trace: bad magic %q, want %q", hdr[:4], binaryMagic)
	}
	if hdr[4] != binaryVersion {
		return fmt.Errorf("trace: unsupported trace-v2 version %d (want %d)", hdr[4], binaryVersion)
	}
	return nil
}

// readBlock reads and decodes the next block into d.pending, or returns
// io.EOF at the end marker.
func (d *BinarySpanReader) readBlock() error {
	if _, err := io.ReadFull(d.r, d.scratch.one[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("trace: binary stream truncated before end marker: %w", io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("trace: read block marker: %w", err)
	}
	switch d.scratch.one[0] {
	case markerEnd:
		return io.EOF
	case markerBlock:
	default:
		return fmt.Errorf("trace: bad block marker 0x%02x", d.scratch.one[0])
	}
	size, err := readUvarint(d.r)
	if err != nil {
		return fmt.Errorf("trace: read block length: %w", err)
	}
	if size == 0 || size > maxBinaryBlockBytes {
		return fmt.Errorf("trace: block length %d outside (0, %d]", size, maxBinaryBlockBytes)
	}
	if cap(d.payload) < int(size) {
		d.payload = make([]byte, size)
	}
	p := d.payload[:size]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return fmt.Errorf("trace: read block payload: %w", err)
	}
	return d.decodeBlock(p)
}

// cursor walks a block payload.
type cursor struct {
	p   []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: block offset %d: bad uvarint", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.p[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: block offset %d: bad varint", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) float(prev *uint64) (float64, error) {
	x, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	*prev ^= x
	return math.Float64frombits(*prev), nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.p) {
		return nil, fmt.Errorf("trace: block offset %d: %d bytes past payload end", c.off, n)
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (d *BinarySpanReader) decodeBlock(p []byte) error {
	c := cursor{p: p}
	nReq64, err := c.uvarint()
	if err != nil {
		return err
	}
	// Every request consumes at least one byte per request column, so the
	// payload length itself bounds a plausible count; the hard cap stops
	// one lying block from forcing a giant allocation.
	if nReq64 == 0 || nReq64 > maxBinaryBlockRequests || nReq64 > uint64(len(p)) {
		return fmt.Errorf("trace: block claims %d requests in %d payload bytes", nReq64, len(p))
	}
	nReq := int(nReq64)
	nSpan64, err := c.uvarint()
	if err != nil {
		return err
	}
	if nSpan64 > uint64(len(p)) {
		return fmt.Errorf("trace: block claims %d spans in %d payload bytes", nSpan64, len(p))
	}
	nSpan := int(nSpan64)

	// Class dictionary.
	nClass64, err := c.uvarint()
	if err != nil {
		return err
	}
	if nClass64 == 0 || nClass64 > nReq64 {
		return fmt.Errorf("trace: block claims %d classes for %d requests", nClass64, nReq64)
	}
	classes := d.scratch.classes[:0]
	for i := 0; i < int(nClass64); i++ {
		l, err := c.uvarint()
		if err != nil {
			return err
		}
		if l > maxBinaryClassBytes {
			return fmt.Errorf("trace: class label of %d bytes exceeds the %d-byte limit", l, maxBinaryClassBytes)
		}
		b, err := c.bytes(int(l))
		if err != nil {
			return err
		}
		classes = append(classes, string(b))
	}
	d.scratch.classes = classes

	if cap(d.pending) < nReq {
		d.pending = make([]Request, nReq)
	}
	reqs := d.pending[:nReq]
	for i := range reqs {
		reqs[i] = Request{}
	}

	// Request columns.
	var prevID int64
	for i := range reqs {
		delta, err := c.varint()
		if err != nil {
			return err
		}
		prevID += delta
		reqs[i].ID = prevID
	}
	for i := range reqs {
		ci, err := c.uvarint()
		if err != nil {
			return err
		}
		if ci >= uint64(len(classes)) {
			return fmt.Errorf("trace: class index %d outside dictionary of %d", ci, len(classes))
		}
		reqs[i].Class = classes[ci]
	}
	for i := range reqs {
		s, err := c.varint()
		if err != nil {
			return err
		}
		reqs[i].Server = int(s)
	}
	var prevF uint64
	for i := range reqs {
		if reqs[i].Arrival, err = c.float(&prevF); err != nil {
			return err
		}
	}
	for i := range reqs {
		rt, err := c.uvarint()
		if err != nil {
			return err
		}
		if rt > math.MaxInt32 {
			return fmt.Errorf("trace: retries %d out of range", rt)
		}
		reqs[i].Retries = int(rt)
	}
	fo, err := c.bytes((nReq + 7) / 8)
	if err != nil {
		return err
	}
	for i := range reqs {
		reqs[i].FailedOver = fo[i/8]&(1<<(i%8)) != 0
	}
	spanCnt := d.scratch.spanCnt[:0]
	var total int
	for range reqs {
		n, err := c.uvarint()
		if err != nil {
			return err
		}
		if n > maxSpansPerRequest {
			return fmt.Errorf("trace: request exceeds %d spans", maxSpansPerRequest)
		}
		total += int(n)
		if total > nSpan {
			return fmt.Errorf("trace: span counts exceed the block's %d spans", nSpan)
		}
		spanCnt = append(spanCnt, int(n))
	}
	d.scratch.spanCnt = spanCnt
	if total != nSpan {
		return fmt.Errorf("trace: span counts sum to %d, block claims %d", total, nSpan)
	}

	// One arena reservation covers the whole block's spans; each request's
	// slice is carved from it below.
	d.arena.Reserve(nSpan)
	for i := range reqs {
		reqs[i].Spans = d.arena.Take(spanCnt[i])
		reqs[i].Spans = reqs[i].Spans[:spanCnt[i]]
	}

	// Span columns.
	subs, err := c.bytes((nSpan + 3) / 4)
	if err != nil {
		return err
	}
	ops, err := c.bytes((nSpan + 3) / 4)
	if err != nil {
		return err
	}
	k := 0
	for i := range reqs {
		for j := range reqs[i].Spans {
			sub := Subsystem(subs[k/4] >> ((k % 4) * 2) & 3)
			op := Op(ops[k/4] >> ((k % 4) * 2) & 3)
			if op > OpWrite {
				return fmt.Errorf("trace: span %d has invalid op %d", k, op)
			}
			reqs[i].Spans[j].Subsystem = sub
			reqs[i].Spans[j].Op = op
			k++
		}
	}
	prevF = 0
	for i := range reqs {
		for j := range reqs[i].Spans {
			if reqs[i].Spans[j].Start, err = c.float(&prevF); err != nil {
				return err
			}
		}
	}
	prevF = 0
	for i := range reqs {
		for j := range reqs[i].Spans {
			if reqs[i].Spans[j].Duration, err = c.float(&prevF); err != nil {
				return err
			}
		}
	}
	for i := range reqs {
		for j := range reqs[i].Spans {
			if reqs[i].Spans[j].Bytes, err = c.varint(); err != nil {
				return err
			}
		}
	}
	for i := range reqs {
		for j := range reqs[i].Spans {
			if reqs[i].Spans[j].LBN, err = c.varint(); err != nil {
				return err
			}
		}
	}
	for i := range reqs {
		for j := range reqs[i].Spans {
			b, err := c.varint()
			if err != nil {
				return err
			}
			reqs[i].Spans[j].Bank = int(b)
		}
	}
	prevF = 0
	for i := range reqs {
		for j := range reqs[i].Spans {
			if reqs[i].Spans[j].Util, err = c.float(&prevF); err != nil {
				return err
			}
		}
	}
	if c.off != len(p) {
		return fmt.Errorf("trace: %d trailing bytes in block", len(p)-c.off)
	}
	d.pending = reqs
	d.next = 0
	return nil
}

// readUvarint reads one uvarint directly from r (used only for the block
// length prefix; everything else decodes from the in-memory payload).
func readUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			if i == binary.MaxVarintLen64-1 && b[0] > 1 {
				return 0, fmt.Errorf("uvarint overflows 64 bits")
			}
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("uvarint overflows 64 bits")
}
