package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzBinaryCodec exercises the trace-v2 codec from both directions on a
// single string corpus. Interpreted as a binary stream, the input must
// never panic the decoder, and anything the decoder accepts must survive
// a re-encode/re-decode byte-identically at the CSV level. Interpreted as
// CSV, any accepted trace must round-trip CSV→binary→CSV to the exact
// same bytes — the codec's losslessness claim, checked on arbitrary
// mutations of real traces.
func FuzzBinaryCodec(f *testing.F) {
	// Real traces: the package sample plus the corner-case trace from
	// binary_test.go (negative deltas, empty classes, denormal floats).
	for _, tr := range []*Trace{sampleTrace(), binaryTestTrace()} {
		var csv, bin bytes.Buffer
		if err := WriteCSV(&csv, tr); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinary(&bin, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(csv.String())
		f.Add(bin.String())
	}
	// The six preset golden traces from the spec package (internal/spec
	// cannot be imported here — it depends on this package — so the
	// goldens are read relatively, best-effort: a moved testdata dir
	// weakens the corpus but must not fail the fuzzer).
	if goldens, err := filepath.Glob(filepath.Join("..", "spec", "testdata", "*.golden.csv")); err == nil {
		for _, path := range goldens {
			if b, err := os.ReadFile(path); err == nil {
				f.Add(string(b))
			}
		}
	}
	// Corrupted headers and truncated streams: wrong magic, wrong
	// version, bad markers, a block that promises more bytes and
	// requests than it carries, and a bare valid prefix.
	f.Add("DCT2")
	f.Add(binaryMagic + "\x00")
	f.Add(binaryMagic + "\x01")
	f.Add(binaryMagic + "\x01\x00")
	f.Add(binaryMagic + "\x01\x02\x05hello")
	f.Add(binaryMagic + "\x01\x01\xff\xff\xff\xff\x7f")
	f.Add(binaryMagic + "\x01\x01\x02\xff\x7f\x00")
	f.Add("TCD2\x01\x00")

	f.Fuzz(func(t *testing.T, input string) {
		// Direction 1: input as a binary stream. Accept or reject, never
		// panic; accepted traces must re-encode losslessly.
		if tr, err := ReadBinary(strings.NewReader(input)); err == nil {
			assertBinaryLossless(t, tr)
		}

		// Direction 2: input as CSV. Whatever the CSV reader accepts,
		// the binary codec must carry without loss.
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		assertBinaryLossless(t, tr)
	})
}

// assertBinaryLossless encodes tr to trace-v2, decodes it back, and fails
// if the CSV rendering of the two traces differs by a single byte. CSV is
// the comparison medium because it is deterministic even for NaN-carrying
// traces, where reflect.DeepEqual cannot be used.
func assertBinaryLossless(t *testing.T, tr *Trace) {
	t.Helper()
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatalf("accepted trace failed to encode as binary: %v", err)
	}
	back, err := ReadBinary(&bin)
	if err != nil {
		t.Fatalf("binary re-encode failed to decode: %v", err)
	}
	var want, got bytes.Buffer
	if err := WriteCSV(&want, tr); err != nil {
		t.Fatalf("CSV encode of original: %v", err)
	}
	if err := WriteCSV(&got, back); err != nil {
		t.Fatalf("CSV encode of round-tripped trace: %v", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("binary round trip not lossless\n want CSV:\n%s\n got CSV:\n%s", want.String(), got.String())
	}
}
