package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// binaryTestTrace covers the codec's corners: empty-span requests, negative
// LBN/Bytes/Server, out-of-order IDs (negative deltas), repeated and
// distinct classes, retries/failover annotations, zero and subnormal floats.
func binaryTestTrace() *Trace {
	return &Trace{Requests: []Request{
		{ID: 7, Class: "read64K", Server: 2, Arrival: 0.125, Retries: 3, FailedOver: true,
			Spans: []Span{
				{Subsystem: Network, Start: 0.125, Duration: 1e-3, Op: OpNone, Bytes: 64 << 10, Util: 0.5},
				{Subsystem: Storage, Start: 0.126, Duration: 2e-3, Op: OpWrite, Bytes: -1, LBN: 1 << 40, Bank: 7, Util: 1},
			}},
		{ID: 3, Class: "", Server: -1, Arrival: 0.125}, // no spans, empty class, id goes backwards
		{ID: 8, Class: "read64K", Server: 0, Arrival: 7.25, Retries: 0,
			Spans: []Span{
				{Subsystem: CPU, Start: 7.25, Duration: 0, Op: OpRead, Bytes: 0, LBN: -9, Bank: -2, Util: math.SmallestNonzeroFloat64},
			}},
		{ID: 9, Class: "scan", Server: 1, Arrival: 7.5,
			Spans: []Span{
				{Subsystem: Memory, Start: 7.5, Duration: 0.25, Op: OpWrite, Bytes: 1, Util: 0},
			}},
	}}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"corners": binaryTestTrace(),
		"empty":   {},
		"bench":   benchCodecTrace(),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("%s: WriteBinary: %v", name, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadBinary: %v", name, err)
		}
		if len(got.Requests) != len(tr.Requests) {
			t.Fatalf("%s: round trip kept %d of %d requests", name, len(got.Requests), len(tr.Requests))
		}
		for i := range tr.Requests {
			if !reflect.DeepEqual(got.Requests[i], tr.Requests[i]) {
				t.Errorf("%s: request %d round-tripped to\n%+v\nwant\n%+v", name, i, got.Requests[i], tr.Requests[i])
			}
		}
	}
}

// TestBinaryMultiBlock pushes past the request flush threshold so the
// stream holds several blocks, including delta chains that reset per block.
func TestBinaryMultiBlock(t *testing.T) {
	tr := &Trace{Requests: make([]Request, 3*binaryBlockRequests+17)}
	for i := range tr.Requests {
		tr.Requests[i] = Request{
			ID: int64(i), Class: "c", Arrival: float64(i) / 100,
			Spans: []Span{{Subsystem: Subsystem(i % 4), Start: float64(i) / 100, Op: Op(i % 3), Bytes: int64(i)}},
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("multi-block round trip diverged (got %d requests, want %d)", len(got.Requests), len(tr.Requests))
	}
}

// TestBinaryCSVInterchange pins the interchange contract: CSV -> binary ->
// CSV is byte-identical, including traces parsed from the legacy 12-column
// layout (which re-emit in the current 14-column form, same as ReadCSV).
func TestBinaryCSVInterchange(t *testing.T) {
	var csv1 bytes.Buffer
	if err := WriteCSV(&csv1, binaryTestTrace()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadCSV(bytes.NewReader(csv1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var csv2 bytes.Buffer
	if err := WriteCSV(&csv2, tr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Fatalf("csv -> binary -> csv not byte-identical:\n%s\nvs\n%s", csv1.Bytes(), csv2.Bytes())
	}

	legacy := "req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n" +
		"1,legacy,0,0.5,storage,0.5,0.001,read,4096,77,3,0.25\n" +
		"1,legacy,0,0.5,cpu,0.501,0.002,none,0,0,0,0.5\n"
	ltr, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy parse: %v", err)
	}
	bin.Reset()
	if err := WriteBinary(&bin, ltr); err != nil {
		t.Fatal(err)
	}
	ltr2, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ltr, ltr2) {
		t.Fatalf("legacy 12-col trace did not survive the binary round trip")
	}
	if ltr2.Requests[0].Retries != 0 || ltr2.Requests[0].FailedOver {
		t.Fatalf("legacy trace grew failure annotations: %+v", ltr2.Requests[0])
	}
}

// TestBinarySpanReaderStreaming exercises the SpanReader-mirroring
// contract: one request per Next, io.EOF at the clean end, sticky errors.
func TestBinarySpanReaderStreaming(t *testing.T) {
	tr := binaryTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d := NewBinarySpanReader(bytes.NewReader(buf.Bytes()))
	for i := range tr.Requests {
		req, err := d.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !reflect.DeepEqual(req, tr.Requests[i]) {
			t.Fatalf("Next %d: got %+v want %+v", i, req, tr.Requests[i])
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("Next after end: got %v, want io.EOF", err)
		}
	}

	// A truncated stream must yield a sticky non-EOF error.
	cut := buf.Bytes()[:buf.Len()-3]
	d = NewBinarySpanReader(bytes.NewReader(cut))
	var firstErr error
	for {
		_, err := d.Next()
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == io.EOF {
		t.Fatal("truncated stream decoded cleanly")
	}
	if _, err := d.Next(); err != firstErr {
		t.Fatalf("error not sticky: got %v then %v", firstErr, err)
	}
}

func TestBinaryRejectsMalformed(t *testing.T) {
	tr := binaryTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mut := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mut(func(b []byte) []byte { b[4] = 99; return b }),
		"bad marker":  mut(func(b []byte) []byte { b[5] = 0x7f; return b }),
		"no end":      mut(func(b []byte) []byte { return b[:len(b)-1] }),
		"header only": []byte(binaryMagic + "\x01"),
		"huge block":  []byte(binaryMagic + "\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
		"zero block":  []byte(binaryMagic + "\x01\x01\x00"),
		"lying count": []byte(binaryMagic + "\x01\x01\x02\xff\x7f\x00"), // 2-byte block claiming 16383 requests
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: malformed stream decoded without error", name)
		}
	}

	// "header only" with nothing after it is truncation, but the header
	// followed by the end marker is a valid empty trace.
	got, err := ReadBinary(strings.NewReader(binaryMagic + "\x01\x00"))
	if err != nil || len(got.Requests) != 0 {
		t.Fatalf("empty stream: got %v, %v", got, err)
	}

	// Flipping any single payload byte must never panic; it may decode (a
	// float or counter changed) or error, both acceptable.
	for i := 5; i < len(valid); i++ {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x40
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d flip: panic %v", i, r)
				}
			}()
			ReadBinary(bytes.NewReader(b))
		}()
	}
}

// TestBinaryWriteRejectsInvalid: the 2-bit columns cannot represent
// out-of-range enums, so the writer must reject them like the CSV String()
// methods would on the way back in.
func TestBinaryWriteRejectsInvalid(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"subsystem": {Requests: []Request{{Spans: []Span{{Subsystem: 9}}}}},
		"op":        {Requests: []Request{{Spans: []Span{{Op: 5}}}}},
		"retries":   {Requests: []Request{{Retries: -1}}},
	} {
		if err := WriteBinary(io.Discard, tr); err == nil {
			t.Errorf("%s: invalid trace encoded without error", name)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	tr := benchCodecTrace()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	tr := benchCodecTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
