package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Trace codecs: a flat CSV span format (one row per span, with request
// fields repeated — convenient for external tools) and JSON (lossless).

// csvHeader is the column layout of the CSV codec.
var csvHeader = []string{
	"req_id", "class", "server", "arrival",
	"subsystem", "start", "duration", "op", "bytes", "lbn", "bank", "util",
}

// WriteCSV writes the trace in the flat span-per-row CSV format. Requests
// without spans are written as a single row with an empty subsystem.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	fl := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	// One row buffer for the whole trace: csv.Writer does not retain the
	// slice, so refilling it per span avoids two slice allocations per row.
	row := make([]string, len(csvHeader))
	for _, r := range t.Requests {
		row[0] = strconv.FormatInt(r.ID, 10)
		row[1] = r.Class
		row[2] = strconv.Itoa(r.Server)
		row[3] = fl(r.Arrival)
		if len(r.Spans) == 0 {
			for i := 4; i < len(row); i++ {
				row[i] = ""
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write csv row: %w", err)
			}
			continue
		}
		for _, s := range r.Spans {
			row[4] = s.Subsystem.String()
			row[5] = fl(s.Start)
			row[6] = fl(s.Duration)
			row[7] = s.Op.String()
			row[8] = strconv.FormatInt(s.Bytes, 10)
			row[9] = strconv.FormatInt(s.LBN, 10)
			row[10] = strconv.Itoa(s.Bank)
			row[11] = fl(s.Util)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a trace from the CSV format written by WriteCSV. Rows
// sharing a req_id are folded into one request; rows must be grouped by
// request (as WriteCSV emits them).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	// Reuse the record slice across rows. Safe even though row[1] (the
	// class) is retained: encoding/csv backs each record's fields with a
	// fresh string per row, ReuseRecord only recycles the []string header.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range header {
		if h != csvHeader[i] {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, h, csvHeader[i])
		}
	}
	t := &Trace{}
	var cur *Request
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: read csv line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d req_id: %w", line, err)
		}
		if cur == nil || cur.ID != id {
			server, err := strconv.Atoi(row[2])
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d server: %w", line, err)
			}
			arrival, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d arrival: %w", line, err)
			}
			t.Requests = append(t.Requests, Request{ID: id, Class: row[1], Server: server, Arrival: arrival})
			cur = &t.Requests[len(t.Requests)-1]
		}
		if row[4] == "" {
			continue // span-less request marker
		}
		sub, err := ParseSubsystem(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		op, err := ParseOp(row[7])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		var span Span
		span.Subsystem = sub
		span.Op = op
		if span.Start, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d start: %w", line, err)
		}
		if span.Duration, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d duration: %w", line, err)
		}
		if span.Bytes, err = strconv.ParseInt(row[8], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d bytes: %w", line, err)
		}
		if span.LBN, err = strconv.ParseInt(row[9], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d lbn: %w", line, err)
		}
		if span.Bank, err = strconv.Atoi(row[10]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d bank: %w", line, err)
		}
		if span.Util, err = strconv.ParseFloat(row[11], 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d util: %w", line, err)
		}
		cur.Spans = append(cur.Spans, span)
	}
	return t, nil
}

// WriteJSON writes the trace as JSON (lossless round trip).
func WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON reads a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return &t, nil
}
