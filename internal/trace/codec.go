package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Trace codecs: a flat CSV span format (one row per span, with request
// fields repeated — convenient for external tools) and JSON (lossless).

// csvHeader is the column layout of the CSV codec. The trailing retries and
// failover columns carry the per-request failure-recovery annotations; they
// were added with the fault-injection engine, and readers also accept the
// older 12-column layout without them (see SpanReader).
var csvHeader = []string{
	"req_id", "class", "server", "arrival",
	"subsystem", "start", "duration", "op", "bytes", "lbn", "bank", "util",
	"retries", "failover",
}

// numLegacyCSVColumns is the column count of the pre-fault layout, which
// ends at the util column.
const numLegacyCSVColumns = 12

// WriteCSV writes the trace in the flat span-per-row CSV format. Requests
// without spans are written as a single row with an empty subsystem.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	fl := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	// One row buffer for the whole trace: csv.Writer does not retain the
	// slice, so refilling it per span avoids two slice allocations per row.
	row := make([]string, len(csvHeader))
	for _, r := range t.Requests {
		row[0] = strconv.FormatInt(r.ID, 10)
		row[1] = r.Class
		row[2] = strconv.Itoa(r.Server)
		row[3] = fl(r.Arrival)
		row[12] = strconv.Itoa(r.Retries)
		if r.FailedOver {
			row[13] = "1"
		} else {
			row[13] = "0"
		}
		if len(r.Spans) == 0 {
			for i := 4; i < numLegacyCSVColumns; i++ {
				row[i] = ""
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write csv row: %w", err)
			}
			continue
		}
		for _, s := range r.Spans {
			row[4] = s.Subsystem.String()
			row[5] = fl(s.Start)
			row[6] = fl(s.Duration)
			row[7] = s.Op.String()
			row[8] = strconv.FormatInt(s.Bytes, 10)
			row[9] = strconv.FormatInt(s.LBN, 10)
			row[10] = strconv.Itoa(s.Bank)
			row[11] = fl(s.Util)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a trace from the CSV format written by WriteCSV. Rows
// sharing a req_id are folded into one request; rows must be grouped by
// request (as WriteCSV emits them). It is the batch wrapper around the
// streaming SpanReader, so both share one parsing path.
func ReadCSV(r io.Reader) (*Trace, error) {
	d := NewSpanReader(r)
	t := &Trace{}
	for {
		req, err := d.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, req)
	}
}

// WriteJSON writes the trace as JSON (lossless round trip).
func WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON reads a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return &t, nil
}
