package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// benchCodecTrace builds a 1000-request trace with the Figure 1 span
// structure, the shape the CSV codec serializes in the CLI pipelines.
func benchCodecTrace() *Trace {
	r := rand.New(rand.NewSource(1))
	t := &Trace{Requests: make([]Request, 1000)}
	subs := []Subsystem{Network, CPU, Memory, Storage, CPU, Network}
	now := 0.0
	for i := range t.Requests {
		now += r.ExpFloat64() / 50
		req := Request{ID: int64(i), Class: "read64K", Server: i % 4, Arrival: now}
		start := now
		for _, sub := range subs {
			d := r.Float64() * 1e-3
			req.Spans = append(req.Spans, Span{
				Subsystem: sub, Start: start, Duration: d,
				Op: OpRead, Bytes: 64 << 10, LBN: int64(r.Intn(1 << 20)), Bank: i % 8,
				Util: r.Float64(),
			})
			start += d
		}
		t.Requests[i] = req
	}
	return t
}

func BenchmarkWriteCSV(b *testing.B) {
	tr := benchCodecTrace()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteCSV(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSV(b *testing.B) {
	tr := benchCodecTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
