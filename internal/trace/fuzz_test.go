package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV reader on arbitrary input: it must never
// panic, and any input it accepts must re-encode and re-parse to the same
// trace (idempotent round trip).
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n")
	f.Add("req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n1,c,0,0,network,0,0,none,0,0,0,0\n")
	f.Add("garbage")
	f.Add("req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n1,c,0,NaN,cpu,0,0,none,0,0,0,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		// DeepEqual cannot compare NaN-carrying traces (NaN != NaN);
		// idempotence is asserted for semantically valid traces only.
		if tr.Validate() == nil && !reflect.DeepEqual(tr, again) {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON codec.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteJSON(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("{}")
	f.Add("{\"Requests\":null}")
	f.Add("[")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
	})
}
