package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTrace builds a structurally valid random trace.
func randomTrace(r *rand.Rand) *Trace {
	n := 1 + r.Intn(20)
	tr := &Trace{Requests: make([]Request, 0, n)}
	classes := []string{"alpha", "beta", "gamma"}
	now := 0.0
	for i := 0; i < n; i++ {
		now += r.Float64()
		req := Request{
			ID:         int64(i),
			Class:      classes[r.Intn(len(classes))],
			Server:     r.Intn(4),
			Arrival:    now,
			Retries:    r.Intn(3),
			FailedOver: r.Intn(4) == 0,
		}
		t := now
		for s := 0; s < r.Intn(6); s++ {
			span := Span{
				Subsystem: Subsystem(r.Intn(4)),
				Start:     t,
				Duration:  r.Float64() * 0.01,
				Op:        Op(r.Intn(3)),
				Bytes:     r.Int63n(1 << 22),
				LBN:       r.Int63n(1 << 30),
				Bank:      r.Intn(8),
				Util:      r.Float64(),
			}
			t = span.End()
			req.Spans = append(req.Spans, span)
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tr); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomTracesValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return randomTrace(r).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatencyNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r)
		for _, req := range tr.Requests {
			if req.Latency() < 0 {
				return false
			}
		}
		// Interarrivals are non-negative after sorting.
		for _, g := range tr.Interarrivals() {
			if g < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	nan := func() float64 {
		var z float64
		return z / z
	}()
	cases := []*Trace{
		{Requests: []Request{{ID: 1, Arrival: nan}}},
		{Requests: []Request{{ID: 1, Spans: []Span{{Subsystem: CPU, Duration: nan}}}}},
		{Requests: []Request{{ID: 1, Spans: []Span{{Subsystem: CPU, Start: nan}}}}},
		{Requests: []Request{{ID: 1, Spans: []Span{{Subsystem: CPU, Util: nan}}}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: NaN should be rejected", i)
		}
	}
}
