package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// FuzzShardedCodecRoundTrip drives the sharded cluster simulator with
// fuzzer-chosen (seed, shards, requests, closed) and pushes the merged
// trace through the CSV codec. It is two properties in one target:
//
//   - simulator invariants: the merged trace is arrival-sorted with dense
//     request IDs and passes Validate for any shard decomposition;
//   - codec round trip: WriteCSV -> ReadCSV reproduces the trace exactly
//     and re-encodes to identical bytes (the float format is lossless).
//
// The external test package breaks the trace <- gfs import cycle.
func FuzzShardedCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(1), uint16(40), false)
	f.Add(int64(42), uint8(4), uint16(120), false)
	f.Add(int64(-7), uint8(8), uint16(64), true)
	f.Add(int64(123456789), uint8(3), uint16(33), true)
	f.Add(int64(0), uint8(16), uint16(16), false)
	f.Fuzz(func(t *testing.T, seed int64, shards uint8, requests uint16, closed bool) {
		// Keep the simulation small: the fuzzer explores the parameter
		// space, not the request count.
		nShards := int(shards)%16 + 1
		n := int(requests)%256 + nShards
		cfg := gfs.Config{
			Chunkservers: 2,
			ChunkSize:    1 << 19,
			Files:        8,
			FileSize:     1 << 21,
			Replication:  1,
		}
		var (
			tr  *trace.Trace
			err error
		)
		if closed {
			tr, err = gfs.SimulateShardedClosed(cfg, gfs.ClosedRunConfig{
				Mix:       workload.Table2Mix(),
				Users:     nShards * 2,
				MeanThink: 0.01,
				Requests:  n,
			}, nShards, 2, seed)
		} else {
			tr, err = gfs.SimulateSharded(cfg, gfs.RunConfig{
				Mix:      workload.Table2Mix(),
				Arrivals: workload.Poisson{Rate: 50},
				Requests: n,
			}, nShards, 2, seed)
		}
		if err != nil {
			t.Fatalf("simulate(seed=%d shards=%d n=%d closed=%v): %v", seed, nShards, n, closed, err)
		}
		if tr.Len() != n {
			t.Fatalf("got %d requests, want %d", tr.Len(), n)
		}
		for i, r := range tr.Requests {
			if r.ID != int64(i) {
				t.Fatalf("request %d has ID %d, want dense merge-order IDs", i, r.ID)
			}
			if i > 0 && r.Arrival < tr.Requests[i-1].Arrival {
				t.Fatalf("arrivals out of order at %d", i)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("merged trace invalid: %v", err)
		}

		var first bytes.Buffer
		if err := trace.WriteCSV(&first, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		decoded, err := trace.ReadCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(tr, decoded) {
			t.Fatal("CSV round trip changed the trace")
		}
		var second bytes.Buffer
		if err := trace.WriteCSV(&second, decoded); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("CSV encoding not byte-idempotent")
		}
	})
}
