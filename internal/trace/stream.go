package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Streaming span decoder: the incremental counterpart of ReadCSV, built
// for long-running ingestion endpoints that must not buffer a whole trace
// before acting on it. SpanReader consumes the WriteCSV span-per-row
// format one request at a time, reusing the csv.Reader's record buffer
// (ReuseRecord) so steady-state decoding allocates only the spans of the
// request being assembled.

const (
	// maxCSVFieldBytes bounds a single CSV field; no legitimate column
	// (numbers, subsystem names, class labels) comes anywhere close, so
	// larger fields are treated as malformed input rather than buffered.
	maxCSVFieldBytes = 1 << 16
	// maxSpansPerRequest bounds the spans folded into one request, so a
	// stream repeating one req_id forever cannot grow a request without
	// bound.
	maxSpansPerRequest = 1 << 20
)

// RequestReader is the streaming decode contract shared by the CSV
// SpanReader and the trace-v2 BinarySpanReader: one complete request per
// Next, io.EOF at the clean end of the stream, any other error sticky.
// The serving daemon and the cluster coordinator/worker ingest paths all
// consume this interface, so a new wire codec only has to implement Next.
type RequestReader interface {
	Next() (Request, error)
}

// NewRequestReader returns the streaming decoder matching an HTTP
// Content-Type: the trace-v2 binary reader for IsBinaryMediaType types,
// the CSV reader (the default interchange format) for everything else.
func NewRequestReader(r io.Reader, contentType string) RequestReader {
	if IsBinaryMediaType(contentType) {
		return NewBinarySpanReader(r)
	}
	return NewSpanReader(r)
}

// IsBinaryMediaType reports whether a Content-Type header value names the
// trace-v2 binary codec (media-type parameters ignored).
func IsBinaryMediaType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeV2
}

// SpanReader incrementally decodes the flat span-per-row CSV trace format.
// Rows sharing a req_id are folded into one Request (rows must be grouped
// by request, as WriteCSV emits them); each completed request is handed to
// the caller as soon as its last row has been read. A SpanReader never
// panics on malformed input and spawns no goroutines; every defect is
// reported as an error from Next, after which the reader is exhausted.
type SpanReader struct {
	cr      *csv.Reader
	line    int
	started bool
	// legacy is true when the stream uses the pre-fault 12-column header
	// (no retries/failover annotations); such requests decode with zero
	// annotations.
	legacy bool
	cur    Request
	curSet bool
	err    error
}

// NewSpanReader returns a streaming decoder reading from r. The header row
// is consumed and checked on the first call to Next.
func NewSpanReader(r io.Reader) *SpanReader {
	cr := csv.NewReader(r)
	// Reuse the record slice across rows. Safe even though the class field
	// is retained: encoding/csv backs each record's fields with a fresh
	// string per row, ReuseRecord only recycles the []string header.
	cr.ReuseRecord = true
	return &SpanReader{cr: cr}
}

// fail records the first error and makes it sticky.
func (d *SpanReader) fail(err error) (Request, error) {
	d.err = err
	d.curSet = false
	return Request{}, err
}

// readHeader consumes and validates the header row. Both the current
// layout and the legacy 12-column layout (without the retries/failover
// annotation columns) are accepted.
func (d *SpanReader) readHeader() error {
	header, err := d.cr.Read()
	if err != nil {
		return fmt.Errorf("trace: read csv header: %w", err)
	}
	switch len(header) {
	case len(csvHeader):
	case numLegacyCSVColumns:
		d.legacy = true
	default:
		return fmt.Errorf("trace: csv header has %d columns, want %d (or the legacy %d)", len(header), len(csvHeader), numLegacyCSVColumns)
	}
	for i, h := range header {
		if h != csvHeader[i] {
			return fmt.Errorf("trace: csv column %d is %q, want %q", i, h, csvHeader[i])
		}
	}
	d.line = 1
	d.started = true
	// csv.Reader pins the field count to the first row; with two accepted
	// layouts that already does the per-row column check for us.
	return nil
}

// Next returns the next complete request, or io.EOF when the stream ends
// cleanly. Any other error is sticky: the reader returns it on every
// subsequent call.
func (d *SpanReader) Next() (Request, error) {
	if d.err != nil {
		return Request{}, d.err
	}
	if !d.started {
		if err := d.readHeader(); err != nil {
			return d.fail(err)
		}
	}
	for {
		row, err := d.cr.Read()
		if err == io.EOF {
			if d.curSet {
				out := d.cur
				d.cur, d.curSet = Request{}, false
				d.err = io.EOF
				return out, nil
			}
			return d.fail(io.EOF)
		}
		d.line++
		if err != nil {
			return d.fail(fmt.Errorf("trace: read csv line %d: %w", d.line, err))
		}
		for i, f := range row {
			if len(f) > maxCSVFieldBytes {
				return d.fail(fmt.Errorf("trace: csv line %d field %d: %d bytes exceeds the %d-byte field limit", d.line, i, len(f), maxCSVFieldBytes))
			}
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return d.fail(fmt.Errorf("trace: csv line %d req_id: %w", d.line, err))
		}
		var done Request
		var emit bool
		if !d.curSet || d.cur.ID != id {
			if d.curSet {
				done, emit = d.cur, true
			}
			server, err := strconv.Atoi(row[2])
			if err != nil {
				return d.fail(fmt.Errorf("trace: csv line %d server: %w", d.line, err))
			}
			arrival, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return d.fail(fmt.Errorf("trace: csv line %d arrival: %w", d.line, err))
			}
			d.cur = Request{ID: id, Class: row[1], Server: server, Arrival: arrival}
			if !d.legacy {
				if row[12] != "" {
					if d.cur.Retries, err = strconv.Atoi(row[12]); err != nil {
						return d.fail(fmt.Errorf("trace: csv line %d retries: %w", d.line, err))
					}
				}
				if row[13] != "" && row[13] != "0" {
					if d.cur.FailedOver, err = strconv.ParseBool(row[13]); err != nil {
						return d.fail(fmt.Errorf("trace: csv line %d failover: %w", d.line, err))
					}
				}
			}
			d.curSet = true
		}
		if row[4] != "" { // non-empty subsystem: the row carries a span
			span, err := parseSpanColumns(row, d.line)
			if err != nil {
				return d.fail(err)
			}
			if len(d.cur.Spans) >= maxSpansPerRequest {
				return d.fail(fmt.Errorf("trace: csv line %d: request %d exceeds %d spans", d.line, id, maxSpansPerRequest))
			}
			d.cur.Spans = append(d.cur.Spans, span)
		}
		if emit {
			return done, nil
		}
	}
}

// parseSpanColumns decodes columns 4..11 of a data row into a Span.
func parseSpanColumns(row []string, line int) (Span, error) {
	var span Span
	sub, err := ParseSubsystem(row[4])
	if err != nil {
		return span, fmt.Errorf("trace: csv line %d: %w", line, err)
	}
	op, err := ParseOp(row[7])
	if err != nil {
		return span, fmt.Errorf("trace: csv line %d: %w", line, err)
	}
	span.Subsystem = sub
	span.Op = op
	if span.Start, err = strconv.ParseFloat(row[5], 64); err != nil {
		return span, fmt.Errorf("trace: csv line %d start: %w", line, err)
	}
	if span.Duration, err = strconv.ParseFloat(row[6], 64); err != nil {
		return span, fmt.Errorf("trace: csv line %d duration: %w", line, err)
	}
	if span.Bytes, err = strconv.ParseInt(row[8], 10, 64); err != nil {
		return span, fmt.Errorf("trace: csv line %d bytes: %w", line, err)
	}
	if span.LBN, err = strconv.ParseInt(row[9], 10, 64); err != nil {
		return span, fmt.Errorf("trace: csv line %d lbn: %w", line, err)
	}
	if span.Bank, err = strconv.Atoi(row[10]); err != nil {
		return span, fmt.Errorf("trace: csv line %d bank: %w", line, err)
	}
	if span.Util, err = strconv.ParseFloat(row[11], 64); err != nil {
		return span, fmt.Errorf("trace: csv line %d util: %w", line, err)
	}
	return span, nil
}
