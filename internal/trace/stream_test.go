package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestSpanReaderMatchesReadCSV streams a round-tripped trace request by
// request and checks it reproduces exactly what the batch reader sees.
func TestSpanReaderMatchesReadCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	encoded := buf.String()

	batch, err := ReadCSV(strings.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	d := NewSpanReader(strings.NewReader(encoded))
	var streamed Trace
	for {
		req, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		streamed.Requests = append(streamed.Requests, req)
	}
	if !reflect.DeepEqual(batch, &streamed) {
		t.Fatalf("stream decode diverges from batch decode:\nbatch:  %+v\nstream: %+v", batch, &streamed)
	}
	// Exhausted reader keeps returning io.EOF.
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next() = %v, want io.EOF", err)
	}
}

// TestSpanReaderEmitsIncrementally checks a request is surfaced as soon as
// its last row has been read, without waiting for the stream to end — the
// property the ingestion endpoint relies on.
func TestSpanReaderEmitsIncrementally(t *testing.T) {
	header := "req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n"
	first := "1,a,0,0.5,network,0.5,0,none,64,0,0,0\n1,a,0,0.5,cpu,0.6,0,none,0,0,0,0.5\n"
	second := "2,b,0,1.5,storage,1.5,0,read,4096,77,0,0\n"

	pr, pw := io.Pipe()
	d := NewSpanReader(pr)
	firstDone := make(chan struct{})
	go func() {
		pw.Write([]byte(header + first + second))
		// Close only after the first request has been decoded, proving it
		// was emitted while the stream was still open.
		<-firstDone
		pw.Close()
	}()
	req, err := d.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if req.ID != 1 || req.Class != "a" || len(req.Spans) != 2 {
		t.Fatalf("first request = %+v", req)
	}
	close(firstDone)
	req, err = d.Next()
	if err != nil {
		t.Fatalf("Next after close: %v", err)
	}
	if req.ID != 2 || req.Class != "b" || len(req.Spans) != 1 || req.Spans[0].LBN != 77 {
		t.Fatalf("second request = %+v", req)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

// TestSpanReaderRejectsMalformed checks malformed, truncated and oversized
// inputs surface as sticky errors, never panics.
func TestSpanReaderRejectsMalformed(t *testing.T) {
	header := "req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n"
	cases := map[string]string{
		"empty":            "",
		"bad header":       "nope\n",
		"short header":     "req_id,class\n",
		"bad id":           header + "x,a,0,0,network,0,0,none,0,0,0,0\n",
		"bad server":       header + "1,a,x,0,network,0,0,none,0,0,0,0\n",
		"bad arrival":      header + "1,a,0,x,network,0,0,none,0,0,0,0\n",
		"bad subsystem":    header + "1,a,0,0,quantum,0,0,none,0,0,0,0\n",
		"bad op":           header + "1,a,0,0,storage,0,0,transmute,0,0,0,0\n",
		"bad bytes":        header + "1,a,0,0,storage,0,0,read,x,0,0,0\n",
		"truncated row":    header + "1,a,0,0,storage,0\n",
		"oversized field":  header + "1," + strings.Repeat("z", maxCSVFieldBytes+1) + ",0,0,network,0,0,none,0,0,0,0\n",
		"bare quote":       header + "1,\"a,0,0,network,0,0,none,0,0,0,0\n",
		"truncated stream": header + "1,a,0,0,network,0,0,none,0,0",
	}
	for name, input := range cases {
		d := NewSpanReader(strings.NewReader(input))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if err == io.EOF {
			t.Errorf("%s: accepted cleanly, want a decode error", name)
		}
		// Sticky: the same error again, no panic.
		_, again := d.Next()
		if again != err {
			t.Errorf("%s: error not sticky: first %v then %v", name, err, again)
		}
	}
}

// TestSpanReaderSpanCap checks the per-request span bound trips instead of
// growing without limit.
func TestSpanReaderSpanCap(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a large synthetic stream")
	}
	var buf bytes.Buffer
	buf.WriteString("req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n")
	row := "1,a,0,0,network,0,0,none,0,0,0,0\n"
	for i := 0; i <= maxSpansPerRequest; i++ {
		buf.WriteString(row)
	}
	d := NewSpanReader(&buf)
	_, err := d.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("span-cap overflow not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), "spans") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// FuzzSpanReader exercises the streaming decoder on arbitrary input: it
// must never panic, any stream it fully accepts must agree with the batch
// reader, and errors must be sticky.
func FuzzSpanReader(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	header := "req_id,class,server,arrival,subsystem,start,duration,op,bytes,lbn,bank,util\n"
	f.Add(seed.String())
	f.Add("")
	f.Add(header)
	f.Add(header + "1,c,0,0,network,0,0,none,0,0,0,0\n")
	f.Add(header + "1,c,0,0,network,0,0,none,0,0,0,0\n2,c,0,1,cpu,1,0,none,0,0,0,0.25\n")
	f.Add(header + "1,c,0,0,,,,,,,,\n")
	f.Add(header + "1,c,0,0,network,0,0,none,0,0")
	f.Add(header + "9223372036854775807,c,0,1e308,storage,0,0,write,1,1,1,1\n")
	f.Add("garbage\nmore garbage")
	f.Fuzz(func(t *testing.T, input string) {
		d := NewSpanReader(strings.NewReader(input))
		var streamed Trace
		var streamErr error
		for {
			req, err := d.Next()
			if err != nil {
				streamErr = err
				break
			}
			if len(streamed.Requests) > 1<<16 {
				return // bounded fuzz effort; large valid streams are fine
			}
			streamed.Requests = append(streamed.Requests, req)
		}
		// Errors are sticky.
		if _, again := d.Next(); again != streamErr {
			t.Fatalf("error not sticky: %v then %v", streamErr, again)
		}
		if streamErr != io.EOF {
			return // rejected input is fine; panics are not
		}
		batch, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			t.Fatalf("stream accepted what batch rejects: %v", err)
		}
		if len(batch.Requests) == 0 {
			batch.Requests = nil
		}
		if !reflect.DeepEqual(batch.Requests, streamed.Requests) && batch.Validate() == nil {
			t.Fatal("stream and batch decode diverge")
		}
	})
}
