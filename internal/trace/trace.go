// Package trace defines the workload-trace schema shared by the whole
// toolkit: requests composed of per-subsystem spans, in the style of
// Dapper's request trees. The GFS simulator emits these traces, the three
// modeling approaches train on them, and the replay engine consumes them.
//
// A span records what the paper's per-subsystem models need: the network
// model sees arrival times and sizes, the CPU model sees utilization, the
// memory model sees bank/size/type, and the storage model sees
// LBN/size/type — exactly the columns of the paper's Table 2.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcmodel/internal/stats"
)

// Subsystem identifies the system part a span executed in — the four parts
// the paper models: storage, processor, memory, network.
type Subsystem int

// The four subsystems of the paper's per-server model.
const (
	Network Subsystem = iota
	CPU
	Memory
	Storage
	numSubsystems
)

// Subsystems lists all subsystems in canonical order.
func Subsystems() []Subsystem { return []Subsystem{Network, CPU, Memory, Storage} }

// String implements fmt.Stringer.
func (s Subsystem) String() string {
	switch s {
	case Network:
		return "network"
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Storage:
		return "storage"
	default:
		return fmt.Sprintf("subsystem(%d)", int(s))
	}
}

// ParseSubsystem parses the String form.
func ParseSubsystem(s string) (Subsystem, error) {
	switch s {
	case "network":
		return Network, nil
	case "cpu":
		return CPU, nil
	case "memory":
		return Memory, nil
	case "storage":
		return Storage, nil
	default:
		return 0, fmt.Errorf("trace: unknown subsystem %q", s)
	}
}

// Op is the operation type of a storage or memory span.
type Op int

// Operation types.
const (
	OpNone Op = iota
	OpRead
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpNone:
		return "none"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ParseOp parses the String form.
func ParseOp(s string) (Op, error) {
	switch s {
	case "read":
		return OpRead, nil
	case "write":
		return OpWrite, nil
	case "none", "":
		return OpNone, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Span is one phase of a request's execution in one subsystem.
type Span struct {
	// Subsystem is where the span executed.
	Subsystem Subsystem
	// Start is the span start time in seconds since trace start.
	Start float64
	// Duration is the span length in seconds.
	Duration float64
	// Op is the operation type (storage and memory spans).
	Op Op
	// Bytes is the payload size (network transfer, memory access, or
	// storage I/O size).
	Bytes int64
	// LBN is the starting logical block number of a storage span.
	LBN int64
	// Bank is the DRAM bank of a memory span.
	Bank int
	// Util is the CPU utilization achieved during a CPU span, in [0, 1].
	Util float64
}

// End returns the span end time.
func (s Span) End() float64 { return s.Start + s.Duration }

// Request is one traced user request: its arrival and the ordered spans it
// executed (Figure 1's Network -> CPU -> Memory -> Storage -> CPU ->
// Network path for GFS).
type Request struct {
	// ID is unique within a trace.
	ID int64
	// Class is a free-form request class label, e.g. "read64K".
	Class string
	// Server is the server that executed the request.
	Server int
	// Arrival is the request arrival time in seconds since trace start.
	Arrival float64
	// Retries counts client retry attempts caused by server failures before
	// the request completed. Zero in healthy traces.
	Retries int `json:",omitempty"`
	// FailedOver reports whether the request completed on a different
	// replica than the one it first targeted.
	FailedOver bool `json:",omitempty"`
	// Spans holds the request's phases ordered by start time.
	Spans []Span
}

// Latency returns the end-to-end latency: last span end minus arrival.
// A request with no spans has zero latency.
func (r Request) Latency() float64 {
	var end float64
	for _, s := range r.Spans {
		if e := s.End(); e > end {
			end = e
		}
	}
	if end < r.Arrival {
		return 0
	}
	return end - r.Arrival
}

// SpansIn returns the request's spans in the given subsystem.
func (r Request) SpansIn(sub Subsystem) []Span {
	var out []Span
	for _, s := range r.Spans {
		if s.Subsystem == sub {
			out = append(out, s)
		}
	}
	return out
}

// Phases returns the subsystem sequence of the request in span order —
// the raw material of KOOZA's time-dependency queue.
func (r Request) Phases() []Subsystem {
	out := make([]Subsystem, len(r.Spans))
	for i, s := range r.Spans {
		out[i] = s.Subsystem
	}
	return out
}

// Trace is an ordered collection of requests.
type Trace struct {
	Requests []Request
}

// ErrEmptyTrace is returned by operations that need a non-empty trace.
var ErrEmptyTrace = errors.New("trace: empty trace")

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// SortByArrival sorts requests by arrival time (stable).
func (t *Trace) SortByArrival() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
}

// Classes returns the distinct request classes in first-seen order.
func (t *Trace) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range t.Requests {
		if !seen[r.Class] {
			seen[r.Class] = true
			out = append(out, r.Class)
		}
	}
	return out
}

// ByClass returns the sub-trace of requests with the given class. The
// returned trace shares request values with t.
func (t *Trace) ByClass(class string) *Trace {
	out := &Trace{}
	for _, r := range t.Requests {
		if r.Class == class {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Filter returns the sub-trace of requests for which keep returns true.
func (t *Trace) Filter(keep func(Request) bool) *Trace {
	out := &Trace{}
	for _, r := range t.Requests {
		if keep(r) {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Merge combines traces into one, re-sorted by arrival. Request IDs are
// preserved; callers merging traces from different servers should have
// distinct Server fields set.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, tr := range traces {
		out.Requests = append(out.Requests, tr.Requests...)
	}
	out.SortByArrival()
	return out
}

// Arrivals returns the request arrival times in trace order.
func (t *Trace) Arrivals() []float64 {
	out := make([]float64, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.Arrival
	}
	return out
}

// Interarrivals returns the gaps between consecutive arrivals (sorted by
// arrival time). A trace with fewer than two requests yields nil.
func (t *Trace) Interarrivals() []float64 {
	if len(t.Requests) < 2 {
		return nil
	}
	arr := t.Arrivals()
	sort.Float64s(arr)
	out := make([]float64, len(arr)-1)
	for i := 1; i < len(arr); i++ {
		out[i-1] = arr[i] - arr[i-1]
	}
	return out
}

// Latencies returns per-request end-to-end latencies in trace order.
func (t *Trace) Latencies() []float64 {
	out := make([]float64, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.Latency()
	}
	return out
}

// SpanFeature extracts one numeric feature from every span of the given
// subsystem across the trace, in request-then-span order.
func (t *Trace) SpanFeature(sub Subsystem, f func(Span) float64) []float64 {
	var out []float64
	for _, r := range t.Requests {
		for _, s := range r.Spans {
			if s.Subsystem == sub {
				out = append(out, f(s))
			}
		}
	}
	return out
}

// Validate checks trace invariants: non-negative times and durations, spans
// not starting before their request's arrival, and unique request IDs.
func (t *Trace) Validate() error {
	ids := make(map[int64]bool, len(t.Requests))
	for i, r := range t.Requests {
		if r.Arrival < 0 || math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			return fmt.Errorf("trace: request %d has invalid arrival %g", r.ID, r.Arrival)
		}
		if ids[r.ID] {
			return fmt.Errorf("trace: duplicate request ID %d (index %d)", r.ID, i)
		}
		ids[r.ID] = true
		if r.Retries < 0 {
			return fmt.Errorf("trace: request %d has negative retries %d", r.ID, r.Retries)
		}
		for j, s := range r.Spans {
			if s.Duration < 0 || math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
				return fmt.Errorf("trace: request %d span %d has invalid duration %g", r.ID, j, s.Duration)
			}
			if s.Start+1e-12 < r.Arrival || math.IsNaN(s.Start) || math.IsInf(s.Start, 0) {
				return fmt.Errorf("trace: request %d span %d start %g invalid for arrival %g", r.ID, j, s.Start, r.Arrival)
			}
			if s.Subsystem < 0 || s.Subsystem >= numSubsystems {
				return fmt.Errorf("trace: request %d span %d has invalid subsystem %d", r.ID, j, s.Subsystem)
			}
			if s.Bytes < 0 {
				return fmt.Errorf("trace: request %d span %d has negative bytes", r.ID, j)
			}
			if s.Util < 0 || s.Util > 1 || math.IsNaN(s.Util) {
				return fmt.Errorf("trace: request %d span %d has utilization %g outside [0,1]", r.ID, j, s.Util)
			}
		}
	}
	return nil
}

// Summary aggregates a trace's headline statistics.
type Summary struct {
	Requests     int
	Classes      []string
	Duration     float64
	MeanLatency  float64
	P99Latency   float64
	MeanInterarr float64
	// SpanCounts holds per-subsystem span counts.
	SpanCounts map[Subsystem]int
}

// Summarize computes a Summary of the trace.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Requests:   len(t.Requests),
		Classes:    t.Classes(),
		SpanCounts: make(map[Subsystem]int),
	}
	if len(t.Requests) == 0 {
		return s
	}
	lat := t.Latencies()
	s.MeanLatency = stats.Mean(lat)
	s.P99Latency = stats.Quantile(lat, 0.99)
	var end float64
	for _, r := range t.Requests {
		if e := r.Arrival + r.Latency(); e > end {
			end = e
		}
		for _, sp := range r.Spans {
			s.SpanCounts[sp.Subsystem]++
		}
	}
	s.Duration = end
	s.MeanInterarr = stats.Mean(t.Interarrivals())
	return s
}
