package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleTrace builds a small two-class trace with the GFS phase structure.
func sampleTrace() *Trace {
	return &Trace{Requests: []Request{
		{
			ID: 1, Class: "read64K", Arrival: 0.0,
			Spans: []Span{
				{Subsystem: Network, Start: 0.0, Duration: 0.001, Bytes: 65536},
				{Subsystem: CPU, Start: 0.001, Duration: 0.0005, Util: 0.021},
				{Subsystem: Memory, Start: 0.0015, Duration: 0.0002, Op: OpRead, Bytes: 16384, Bank: 2},
				{Subsystem: Storage, Start: 0.0017, Duration: 0.008, Op: OpRead, Bytes: 65536, LBN: 1024},
				{Subsystem: CPU, Start: 0.0097, Duration: 0.0004, Util: 0.02},
				{Subsystem: Network, Start: 0.0101, Duration: 0.001, Bytes: 65536},
			},
		},
		{
			ID: 2, Class: "write4M", Arrival: 0.5,
			Retries: 2, FailedOver: true,
			Spans: []Span{
				{Subsystem: Network, Start: 0.5, Duration: 0.004, Bytes: 4 << 20},
				{Subsystem: CPU, Start: 0.504, Duration: 0.001, Util: 0.051},
				{Subsystem: Storage, Start: 0.505, Duration: 0.012, Op: OpWrite, Bytes: 4 << 20, LBN: 9999},
			},
		},
		{ID: 3, Class: "read64K", Arrival: 0.9},
	}}
}

func TestSubsystemStringRoundTrip(t *testing.T) {
	for _, s := range Subsystems() {
		parsed, err := ParseSubsystem(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: %v %v", s, parsed, err)
		}
	}
	if _, err := ParseSubsystem("bogus"); err == nil {
		t.Error("bogus subsystem should fail")
	}
	if got := Subsystem(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown subsystem string = %q", got)
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for _, o := range []Op{OpNone, OpRead, OpWrite} {
		parsed, err := ParseOp(o.String())
		if err != nil || parsed != o {
			t.Errorf("round trip %v: %v %v", o, parsed, err)
		}
	}
	if got, err := ParseOp(""); err != nil || got != OpNone {
		t.Error("empty op should parse to OpNone")
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Error("bogus op should fail")
	}
}

func TestRequestLatency(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Requests[0].Latency(); math.Abs(got-0.0111) > 1e-9 {
		t.Errorf("latency = %g, want 0.0111", got)
	}
	if got := tr.Requests[2].Latency(); got != 0 {
		t.Errorf("span-less latency = %g, want 0", got)
	}
}

func TestRequestPhasesAndSpansIn(t *testing.T) {
	r := sampleTrace().Requests[0]
	want := []Subsystem{Network, CPU, Memory, Storage, CPU, Network}
	if !reflect.DeepEqual(r.Phases(), want) {
		t.Errorf("phases = %v, want %v", r.Phases(), want)
	}
	if got := len(r.SpansIn(CPU)); got != 2 {
		t.Errorf("CPU spans = %d, want 2", got)
	}
	if got := len(r.SpansIn(Storage)); got != 1 {
		t.Errorf("storage spans = %d, want 1", got)
	}
}

func TestTraceClassesAndByClass(t *testing.T) {
	tr := sampleTrace()
	if !reflect.DeepEqual(tr.Classes(), []string{"read64K", "write4M"}) {
		t.Errorf("classes = %v", tr.Classes())
	}
	sub := tr.ByClass("read64K")
	if sub.Len() != 2 {
		t.Errorf("ByClass len = %d, want 2", sub.Len())
	}
	if tr.ByClass("nope").Len() != 0 {
		t.Error("unknown class should be empty")
	}
}

func TestTraceFilterMergeSort(t *testing.T) {
	tr := sampleTrace()
	late := tr.Filter(func(r Request) bool { return r.Arrival > 0.4 })
	if late.Len() != 2 {
		t.Errorf("filter len = %d, want 2", late.Len())
	}
	early := tr.Filter(func(r Request) bool { return r.Arrival <= 0.4 })
	merged := Merge(late, early)
	if merged.Len() != 3 {
		t.Errorf("merged len = %d", merged.Len())
	}
	for i := 1; i < merged.Len(); i++ {
		if merged.Requests[i].Arrival < merged.Requests[i-1].Arrival {
			t.Error("merge did not sort by arrival")
		}
	}
}

func TestTraceArrivalsInterarrivals(t *testing.T) {
	tr := sampleTrace()
	arr := tr.Arrivals()
	if !reflect.DeepEqual(arr, []float64{0, 0.5, 0.9}) {
		t.Errorf("arrivals = %v", arr)
	}
	gaps := tr.Interarrivals()
	if len(gaps) != 2 || math.Abs(gaps[0]-0.5) > 1e-12 || math.Abs(gaps[1]-0.4) > 1e-12 {
		t.Errorf("interarrivals = %v", gaps)
	}
	if (&Trace{}).Interarrivals() != nil {
		t.Error("empty interarrivals should be nil")
	}
}

func TestSpanFeature(t *testing.T) {
	tr := sampleTrace()
	utils := tr.SpanFeature(CPU, func(s Span) float64 { return s.Util })
	if len(utils) != 3 {
		t.Fatalf("cpu features = %v", utils)
	}
	if utils[0] != 0.021 || utils[2] != 0.051 {
		t.Errorf("cpu utils = %v", utils)
	}
	lbns := tr.SpanFeature(Storage, func(s Span) float64 { return float64(s.LBN) })
	if !reflect.DeepEqual(lbns, []float64{1024, 9999}) {
		t.Errorf("lbns = %v", lbns)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Errorf("sample trace should validate: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"negative arrival", func(tr *Trace) { tr.Requests[0].Arrival = -1; tr.Requests[0].Spans = nil }},
		{"duplicate id", func(tr *Trace) { tr.Requests[1].ID = 1 }},
		{"negative duration", func(tr *Trace) { tr.Requests[0].Spans[0].Duration = -1 }},
		{"span before arrival", func(tr *Trace) { tr.Requests[0].Spans[0].Start = -0.5 }},
		{"bad subsystem", func(tr *Trace) { tr.Requests[0].Spans[0].Subsystem = 42 }},
		{"negative bytes", func(tr *Trace) { tr.Requests[0].Spans[0].Bytes = -1 }},
		{"bad util", func(tr *Trace) { tr.Requests[0].Spans[1].Util = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := sampleTrace()
			tt.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize()
	if s.Requests != 3 {
		t.Errorf("requests = %d", s.Requests)
	}
	if s.SpanCounts[CPU] != 3 || s.SpanCounts[Storage] != 2 || s.SpanCounts[Network] != 3 {
		t.Errorf("span counts = %v", s.SpanCounts)
	}
	if s.Duration < 0.9 {
		t.Errorf("duration = %g", s.Duration)
	}
	if got := (&Trace{}).Summarize(); got.Requests != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("csv round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("wrong header width should fail")
	}
	badHeader := strings.Replace(strings.Join(csvHeader, ","), "req_id", "nope", 1)
	if _, err := ReadCSV(strings.NewReader(badHeader + "\n")); err == nil {
		t.Error("wrong header name should fail")
	}
	good := strings.Join(csvHeader, ",") + "\n"
	badRows := []string{
		"x,c,0,0,network,0,0,none,0,0,0,0,0,0",  // bad id
		"1,c,x,0,network,0,0,none,0,0,0,0,0,0",  // bad server
		"1,c,0,x,network,0,0,none,0,0,0,0,0,0",  // bad arrival
		"1,c,0,0,bogus,0,0,none,0,0,0,0,0,0",    // bad subsystem
		"1,c,0,0,network,x,0,none,0,0,0,0,0,0",  // bad start
		"1,c,0,0,network,0,x,none,0,0,0,0,0,0",  // bad duration
		"1,c,0,0,network,0,0,bogus,0,0,0,0,0,0", // bad op
		"1,c,0,0,network,0,0,none,x,0,0,0,0,0",  // bad bytes
		"1,c,0,0,network,0,0,none,0,x,0,0,0,0",  // bad lbn
		"1,c,0,0,network,0,0,none,0,0,x,0,0,0",  // bad bank
		"1,c,0,0,network,0,0,none,0,0,0,x,0,0",  // bad util
		"1,c,0,0,network,0,0,none,0,0,0,0,x,0",  // bad retries
		"1,c,0,0,network,0,0,none,0,0,0,0,0,x",  // bad failover
		"1,c,0,0,network,0,0,none,0,0,0,0",      // legacy-width row under new header
	}
	for _, row := range badRows {
		if _, err := ReadCSV(strings.NewReader(good + row + "\n")); err == nil {
			t.Errorf("row %q should fail", row)
		}
	}
}

// TestCSVLegacyHeader: traces written before the retries/failover columns
// existed still decode, with zero annotations.
func TestCSVLegacyHeader(t *testing.T) {
	legacy := strings.Join(csvHeader[:numLegacyCSVColumns], ",") + "\n" +
		"7,read64K,3,0.25,network,0.25,0.001,none,4096,0,0,0\n" +
		"7,read64K,3,0.25,storage,0.251,0.008,read,4096,77,0,0\n"
	got, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != 1 {
		t.Fatalf("got %d requests, want 1", len(got.Requests))
	}
	r := got.Requests[0]
	if r.ID != 7 || r.Server != 3 || len(r.Spans) != 2 {
		t.Fatalf("legacy decode mismatch: %+v", r)
	}
	if r.Retries != 0 || r.FailedOver {
		t.Fatalf("legacy rows must decode with zero annotations, got %+v", r)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("json round trip mismatch")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("bad json should fail")
	}
}
