package twin

import (
	"fmt"
	"math"
	"sort"

	"dcmodel/internal/hw"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// The compilers lower each trained model to the Twin IR. Every demand is
// an exact expectation of the corresponding replay cost function under the
// model's feature distributions — no sampling:
//
//   network   E[T] = Latency + E[bytes]/Bandwidth            (hw.Network.TransferTime)
//   cpu       E[T] = (BaseCycles + CyclesPerByte*E[bytes])/Frequency (hw.CPU.Time)
//   memory    E[T] = MissLatency + E[bytes]/Bandwidth        (hw.Memory.Access, row-miss
//             assumed: consecutive requests target different rows)
//   storage   E[T] = (1-SeqProb)*(E[seek]+Rotational) + E[bytes]/TransferRate
//             with E[seek] from the storage chain's stationary region walk
//             (hw.Disk.Access; sequential continuations skip seek+rotation)
//
// Variances propagate the same way (linear cost functions ⇒ scaled
// distribution variances; the seek/no-seek branch adds a Bernoulli term),
// and path/class mixtures combine by the law of total variance.

// moments accumulates mean and variance of per-request demand per station.
type moments struct {
	mean [4]float64
	vari [4]float64
}

// add accumulates a phase's (mean, var) onto its subsystem.
func (m *moments) add(sub trace.Subsystem, mean, vari float64) {
	m.mean[sub] += mean
	m.vari[sub] += vari
}

// mixture combines weighted per-path moments into per-station (D, SCV)
// using the law of total variance across paths.
type mixture struct {
	w     float64    // total weight accumulated
	mean  [4]float64 // sum w_p * m_p
	meanE [4]float64 // sum w_p * (v_p + m_p^2)
}

func (mx *mixture) add(w float64, m moments) {
	if w <= 0 {
		return
	}
	mx.w += w
	for k := 0; k < 4; k++ {
		mx.mean[k] += w * m.mean[k]
		mx.meanE[k] += w * (m.vari[k] + m.mean[k]*m.mean[k])
	}
}

// stations normalizes the mixture into the canonical station slice.
func (mx *mixture) stations() ([]Station, error) {
	if mx.w <= 0 {
		return nil, badConfig("model has no weighted request paths")
	}
	out := make([]Station, 0, 4)
	for _, sub := range trace.Subsystems() {
		d := mx.mean[sub] / mx.w
		v := mx.meanE[sub]/mx.w - d*d
		scv := 0.0
		if d > 0 && v > 0 {
			scv = v / (d * d)
		}
		if !validMoment(d) || !validMoment(scv) {
			return nil, badConfig("station %s compiled to non-finite demand (d=%g scv=%g)", sub, d, scv)
		}
		out = append(out, Station{Subsystem: sub, Name: sub.String(), Demand: d, SCV: scv})
	}
	return out, nil
}

func validMoment(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }

// distMoments returns (mean, var) of an empirical byte distribution,
// tolerating nil (zero bytes).
func distMoments(e *stats.Empirical) (float64, float64) {
	if e == nil {
		return 0, 0
	}
	return e.Mean(), e.Var()
}

// arrivalMoments derives (lambda, SCV) from an interarrival distribution.
func arrivalMoments(d stats.Dist) (float64, float64, error) {
	if d == nil {
		return 0, 0, badConfig("model has no arrival process")
	}
	mean, vari := d.Mean(), d.Var()
	if !(mean > 0) || math.IsNaN(vari) || math.IsInf(vari, 0) || vari < 0 {
		return 0, 0, badConfig("arrival process has invalid moments mean=%g var=%g", mean, vari)
	}
	return 1 / mean, vari / (mean * mean), nil
}

// CompileKooza lowers a trained KOOZA model onto a platform server. The
// servers count mirrors replay.Platform.Servers: 0 infers the trained
// server layout's size.
func CompileKooza(m *kooza.Model, srv *hw.Server, servers int) (*Twin, error) {
	if m == nil || len(m.Classes) == 0 {
		return nil, badConfig("nil or untrained kooza model")
	}
	if err := validServer(srv); err != nil {
		return nil, err
	}
	var classW float64
	for _, c := range m.Classes {
		classW += c.Weight
	}
	if classW <= 0 {
		return nil, badConfig("kooza class weights sum to zero")
	}
	var mx mixture
	serverWeight := map[int]float64{}
	for _, c := range m.Classes {
		cw := c.Weight / classW
		seek, err := seekMean(c.Storage, srv.Disk)
		if err != nil {
			return nil, fmt.Errorf("twin: class %s: %w", c.Name, err)
		}
		paths := c.Queues
		if len(paths) == 0 {
			paths = []kooza.PhaseQueue{{Phases: c.Phases, Weight: 1}}
		}
		var pathW float64
		for _, q := range paths {
			pathW += q.Weight
		}
		if pathW <= 0 {
			pathW = 1
		}
		for _, q := range paths {
			mx.add(cw*q.Weight/pathW, koozaPathMoments(c, q, srv, seek))
		}
		// Per-server traffic split (multi-server instancing). Keys are
		// sorted before any float accumulates: map iteration order must
		// never reach the sums, or the compiled twin differs in the last
		// ULP from run to run.
		servers := make([]int, 0, len(c.ServerWeights))
		for s := range c.ServerWeights {
			servers = append(servers, s)
		}
		sort.Ints(servers)
		var sw float64
		for _, s := range servers {
			sw += c.ServerWeights[s]
		}
		if sw > 0 {
			for _, s := range servers {
				serverWeight[s] += cw * c.ServerWeights[s] / sw
			}
		} else {
			serverWeight[0] += cw
		}
	}
	st, err := mx.stations()
	if err != nil {
		return nil, err
	}
	lambda, scv, err := koozaArrival(m.Network)
	if err != nil {
		return nil, err
	}
	return &Twin{
		Approach:   "KOOZA",
		Lambda:     lambda,
		ArrivalSCV: scv,
		Stations:   st,
		Servers:    maxInt(servers, len(serverWeight)),
		Shares:     sharesOf(serverWeight),
	}, nil
}

// koozaPathMoments computes one control-flow path's per-station demand
// moments, mirroring the synthesis feature-assignment conventions (first
// network span draws NetIn, later ones NetOut; the i-th CPU span draws the
// path's i-th CPUBytes distribution).
func koozaPathMoments(c *kooza.ClassModel, q kooza.PhaseQueue, srv *hw.Server, seek float64) moments {
	var mo moments
	sawNet, sawCPU := 0, 0
	for _, phase := range q.Phases {
		switch phase {
		case trace.Network:
			dist := c.NetIn
			if sawNet > 0 {
				dist = c.NetOut
			}
			sawNet++
			b, v := distMoments(dist)
			mo.add(phase, srv.Net.Latency+b/srv.Net.Bandwidth, v/(srv.Net.Bandwidth*srv.Net.Bandwidth))
		case trace.CPU:
			var dist *stats.Empirical
			if sawCPU < len(q.CPUBytes) {
				dist = q.CPUBytes[sawCPU]
			}
			sawCPU++
			b, v := distMoments(dist)
			cpb := srv.CPU.CyclesPerByte / srv.CPU.Frequency
			mo.add(phase, (srv.CPU.BaseCycles+srv.CPU.CyclesPerByte*b)/srv.CPU.Frequency, cpb*cpb*v)
		case trace.Memory:
			b, v := distMoments(c.Memory.Sizes)
			mo.add(phase, srv.Mem.MissLatency+b/srv.Mem.Bandwidth, v/(srv.Mem.Bandwidth*srv.Mem.Bandwidth))
		case trace.Storage:
			m, v := storagePhaseMean(c.Storage, srv.Disk, seek)
			mo.add(phase, m, v)
		}
	}
	return mo
}

// storagePhaseMean returns (mean, var) of one storage phase: the
// seek-or-sequential branch times the positional cost, plus the transfer.
func storagePhaseMean(s *kooza.StorageModel, d *hw.Disk, seek float64) (float64, float64) {
	b, v := distMoments(s.Sizes)
	pSeek := 1 - s.SeqProb
	if pSeek < 0 {
		pSeek = 0
	}
	if pSeek > 1 {
		pSeek = 1
	}
	positional := seek + d.RotationalLatency
	mean := pSeek*positional + b/d.TransferRate
	vari := pSeek*(1-pSeek)*positional*positional + v/(d.TransferRate*d.TransferRate)
	return mean, vari
}

// seekMean is the expected seek time of a non-sequential I/O: the
// stationary region walk of the storage chain pushed through the disk's
// square-root seek curve, E[seek] = MinSeek + (MaxSeek-MinSeek) *
// sum_i pi_i sum_j P_ij sqrt(d_ij / NumBlocks), with region-center
// distances and a width/3 intra-region mean distance.
func seekMean(s *kooza.StorageModel, d *hw.Disk) (float64, error) {
	if s == nil {
		return 0, badConfig("class has no storage model")
	}
	pi, step, err := regionWalk(s)
	if err != nil {
		return 0, err
	}
	regions := len(pi)
	width := float64(s.BlocksPerRegion)
	centers := make([]float64, regions)
	for i := range centers {
		centers[i] = (float64(i) + 0.5) * width
	}
	blocks := float64(d.NumBlocks)
	var esqrt float64
	for i := 0; i < regions; i++ {
		if pi[i] == 0 {
			continue
		}
		for j := 0; j < regions; j++ {
			p := step(i, j)
			if p == 0 {
				continue
			}
			dist := math.Abs(centers[i] - centers[j])
			if i == j {
				dist = width / 3
			}
			esqrt += pi[i] * p * math.Sqrt(dist/blocks)
		}
	}
	return d.MinSeek + (d.MaxSeek-d.MinSeek)*esqrt, nil
}

// regionWalk returns the stationary region distribution and a one-step
// transition lookup for either storage-chain representation.
func regionWalk(s *kooza.StorageModel) ([]float64, func(i, j int) float64, error) {
	switch {
	case s.Chain != nil:
		pi, err := s.Chain.Stationary()
		if err != nil {
			return nil, nil, badConfig("storage chain: %v", err)
		}
		return pi, func(i, j int) float64 { return s.Chain.Trans.Row(i)[j] }, nil
	case s.Hier != nil:
		return hierWalk(s.Hier)
	default:
		return nil, nil, badConfig("storage model has neither chain nor hierarchy")
	}
}

// hierWalk flattens the two-level storage model: pi_state =
// pi_top(group) * pi_sub(local), and a step from i lands in group g with
// the top chain then picks a state within g by the group's stationary
// sub-distribution — the closed-form analogue of Hierarchical.Simulate.
func hierWalk(h *markov.Hierarchical) ([]float64, func(i, j int) float64, error) {
	piTop, err := h.Top.Stationary()
	if err != nil {
		return nil, nil, badConfig("storage hierarchy top chain: %v", err)
	}
	n := len(h.Groups)
	pi := make([]float64, n)
	within := make([]float64, n) // stationary weight of each state within its group
	for g, members := range h.Members {
		piSub, err := h.Sub[g].Stationary()
		if err != nil {
			return nil, nil, badConfig("storage hierarchy group %d: %v", g, err)
		}
		for local, state := range members {
			within[state] = piSub[local]
			pi[state] = piTop[g] * piSub[local]
		}
	}
	step := func(i, j int) float64 {
		return h.Top.Trans.Row(h.Groups[i])[h.Groups[j]] * within[j]
	}
	return pi, step, nil
}

// koozaArrival derives (lambda, SCV) from the network model; the
// semi-Markov gap refinement mixes the per-regime empirical moments by the
// gap chain's stationary distribution.
func koozaArrival(n *kooza.NetworkModel) (float64, float64, error) {
	if n == nil {
		return 0, 0, badConfig("kooza model has no network model")
	}
	if n.GapChain == nil {
		return arrivalMoments(n.Interarrival)
	}
	pi, err := n.GapChain.Stationary()
	if err != nil {
		return 0, 0, badConfig("gap chain: %v", err)
	}
	var mean, e2 float64
	for i, p := range pi {
		if i >= len(n.GapStates) || n.GapStates[i] == nil {
			continue
		}
		m, v := n.GapStates[i].Mean(), n.GapStates[i].Var()
		mean += p * m
		e2 += p * (v + m*m)
	}
	if !(mean > 0) {
		return 0, 0, badConfig("gap model has non-positive mean interarrival %g", mean)
	}
	return 1 / mean, (e2 - mean*mean) / (mean * mean), nil
}

// CompileInBreadth lowers a trained in-breadth model: one class-blind path
// with the marginal per-request span counts as visit ratios.
func CompileInBreadth(m *inbreadth.Model, srv *hw.Server, servers int) (*Twin, error) {
	if m == nil || m.Storage == nil || m.CPU == nil || m.Memory == nil {
		return nil, badConfig("nil or untrained in-breadth model")
	}
	if err := validServer(srv); err != nil {
		return nil, err
	}
	seek, err := seekMean(m.Storage, srv.Disk)
	if err != nil {
		return nil, err
	}
	var mo moments
	for sub, visits := range m.SpansPerRequest {
		if visits <= 0 {
			continue
		}
		var mean, vari float64
		switch sub {
		case trace.Network:
			b, v := distMoments(m.NetBytes)
			mean = srv.Net.Latency + b/srv.Net.Bandwidth
			vari = v / (srv.Net.Bandwidth * srv.Net.Bandwidth)
		case trace.CPU:
			b, v := distMoments(m.CPUBytes)
			cpb := srv.CPU.CyclesPerByte / srv.CPU.Frequency
			mean = (srv.CPU.BaseCycles + srv.CPU.CyclesPerByte*b) / srv.CPU.Frequency
			vari = cpb * cpb * v
		case trace.Memory:
			b, v := distMoments(m.Memory.Sizes)
			mean = srv.Mem.MissLatency + b/srv.Mem.Bandwidth
			vari = v / (srv.Mem.Bandwidth * srv.Mem.Bandwidth)
		case trace.Storage:
			mean, vari = storagePhaseMean(m.Storage, srv.Disk, seek)
		default:
			continue
		}
		mo.add(sub, visits*mean, visits*vari)
	}
	var mx mixture
	mx.add(1, mo)
	st, err := mx.stations()
	if err != nil {
		return nil, err
	}
	lambda, scv, err := arrivalMoments(m.Interarrival)
	if err != nil {
		return nil, err
	}
	// In-breadth synthesis has no server-instancing model: every request
	// lands on server 0.
	return &Twin{
		Approach:   "in-breadth",
		Lambda:     lambda,
		ArrivalSCV: scv,
		Stations:   st,
		Servers:    maxInt(servers, 1),
		Shares:     []float64{1},
	}, nil
}

// CompileInDepth lowers a trained in-depth model. The model is self-timed
// — its per-phase empirical service times already encode the platform it
// was trained on — so no hardware cost functions are involved.
func CompileInDepth(m *indepth.Model) (*Twin, error) {
	if m == nil || len(m.Classes) == 0 {
		return nil, badConfig("nil or untrained in-depth model")
	}
	var classW float64
	for _, c := range m.Classes {
		classW += c.Weight
	}
	if classW <= 0 {
		return nil, badConfig("in-depth class weights sum to zero")
	}
	var mx mixture
	for _, c := range m.Classes {
		var mo moments
		for i, sub := range c.Phases {
			if i >= len(c.Service) || c.Service[i] == nil {
				continue
			}
			mo.add(sub, c.Service[i].Mean(), c.Service[i].Var())
		}
		mx.add(c.Weight/classW, mo)
	}
	st, err := mx.stations()
	if err != nil {
		return nil, err
	}
	lambda, scv, err := arrivalMoments(m.Interarrival)
	if err != nil {
		return nil, err
	}
	// In-depth synthesis runs one shared set of FIFO stations.
	return &Twin{
		Approach:   "in-depth",
		Lambda:     lambda,
		ArrivalSCV: scv,
		Stations:   st,
		Servers:    1,
		Shares:     []float64{1},
	}, nil
}

func validServer(srv *hw.Server) error {
	if srv == nil {
		return badConfig("nil platform server")
	}
	if err := srv.Validate(); err != nil {
		return badConfig("platform: %v", err)
	}
	return nil
}

// sharesOf normalizes a server->weight map into a hottest-first share
// vector (map order never reaches the floats: keys are sorted).
func sharesOf(weights map[int]float64) []float64 {
	if len(weights) == 0 {
		return []float64{1}
	}
	ids := make([]int, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	for _, id := range ids {
		sum += weights[id]
	}
	if sum <= 0 {
		return []float64{1}
	}
	out := make([]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, weights[id]/sum)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
