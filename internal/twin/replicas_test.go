package twin

import (
	"encoding/json"
	"errors"
	"testing"

	"dcmodel/internal/errs"
	"dcmodel/internal/trace"
)

func replicaTwin() *Twin {
	return &Twin{
		Approach:   "test",
		Lambda:     50,
		ArrivalSCV: 1,
		Stations: []Station{
			{Subsystem: trace.Network, Name: trace.Network.String(), Demand: 0.003, SCV: 1},
			{Subsystem: trace.CPU, Name: trace.CPU.String(), Demand: 0.005, SCV: 1},
			{Subsystem: trace.Memory, Name: trace.Memory.String(), Demand: 0.002, SCV: 1},
			{Subsystem: trace.Storage, Name: trace.Storage.String(), Demand: 0.008, SCV: 1},
		},
		Servers: 1,
		Shares:  []float64{1},
	}
}

// TestReplicasScaleStorageAndNetwork: R-way replication multiplies the
// storage and network demands by R and leaves CPU and memory untouched, so
// the replicated answer is strictly slower.
func TestReplicasScaleStorageAndNetwork(t *testing.T) {
	tw := replicaTwin()
	base, err := tw.WhatIf(Query{Servers: 8})
	if err != nil {
		t.Fatal(err)
	}
	repl, err := tw.WhatIf(Query{Servers: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !repl.Stable {
		t.Fatal("2-way replication at 8 servers should still be stable")
	}
	if repl.MeanResponseSeconds <= base.MeanResponseSeconds {
		t.Fatalf("replicated mean %.6f should exceed unreplicated %.6f",
			repl.MeanResponseSeconds, base.MeanResponseSeconds)
	}
	demand := func(a Answer, name string) float64 {
		for _, s := range a.Stations {
			if s.Name == name {
				return s.Utilization
			}
		}
		t.Fatalf("station %q missing", name)
		return 0
	}
	for _, name := range []string{trace.Storage.String(), trace.Network.String()} {
		if got, want := demand(repl, name), 2*demand(base, name); !closeTo(got, want, 1e-12) {
			t.Errorf("%s utilization = %g, want %g (doubled)", name, got, want)
		}
	}
	for _, name := range []string{trace.CPU.String(), trace.Memory.String()} {
		if got, want := demand(repl, name), demand(base, name); !closeTo(got, want, 1e-12) {
			t.Errorf("%s utilization = %g, want %g (untouched)", name, got, want)
		}
	}
}

// TestReplicasIdentity: 0 and 1 both mean unreplicated, byte-identical to
// a query that never mentions replicas.
func TestReplicasIdentity(t *testing.T) {
	tw := replicaTwin()
	base, err := tw.WhatIf(Query{Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1} {
		got, err := tw.WhatIf(Query{Servers: 4, Replicas: r})
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := json.Marshal(got)
		bb, _ := json.Marshal(base)
		if string(gb) != string(bb) {
			t.Errorf("Replicas=%d answer differs from the unreplicated one", r)
		}
	}
}

// TestBadConfigAtTwinBoundary: the PR 10 bugfix sweep — negative replica
// counts and ServersDown >= Servers are rejected as ErrBadConfig before any
// solver runs, instead of producing NaN utilizations.
func TestBadConfigAtTwinBoundary(t *testing.T) {
	tw := replicaTwin()
	cases := []Query{
		{Servers: 4, Replicas: -1},
		{Servers: 4, ServersDown: 4},
		{Servers: 4, ServersDown: 9},
	}
	for i, q := range cases {
		_, err := tw.WhatIf(q)
		if !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadConfig", i, q, err)
		}
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
