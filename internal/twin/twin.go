// Package twin compiles trained workload models into closed-form
// queueing-network approximations — an "analytical twin" that sits beside
// every simulation path in the repo. Where replay and the GFS simulator
// answer performance questions by executing requests, a twin answers them
// with queueing formulas: arrival rates come from the model's fitted
// arrival process, per-station service demands come from pushing the
// model's feature distributions through the platform's hardware cost
// functions, and the solver (Jackson tandem, G/G/1 with QNA-style
// variability propagation, or exact MVA for closed loops) is selected by
// the workload's shape.
//
// The twin's contract is determinism: compilation and evaluation use pure
// float arithmetic — distribution moments, Markov stationary vectors and
// queueing formulas — and never draw a random number. The same model and
// query always produce the identical answer, byte for byte, regardless of
// GOMAXPROCS or call count. That is what makes the what-if path cheap
// enough to serve interactively (the /v1/whatif endpoint bypasses the
// daemon's simulation worker pool entirely) and reproducible enough to pin
// with golden tests.
package twin

import (
	"fmt"

	"dcmodel/internal/errs"
	"dcmodel/internal/trace"
)

// Station is one service station of the compiled queueing network: a
// subsystem of one server, with the aggregate per-request service demand
// (seconds a request occupies the station summed over all its visits) and
// the squared coefficient of variation of that demand.
type Station struct {
	// Subsystem identifies the hardware station.
	Subsystem trace.Subsystem
	// Name is the subsystem's human label ("network", "cpu", ...).
	Name string
	// Demand is the mean per-request service demand in seconds.
	Demand float64
	// SCV is the squared coefficient of variation (Var/Mean^2) of the
	// per-request demand; 0 for deterministic or zero-demand stations.
	SCV float64
}

// Twin is a compiled analytical twin: the queueing-network intermediate
// representation every trained model lowers to. It is immutable after
// Compile; WhatIf evaluations share one Twin freely across goroutines.
type Twin struct {
	// Approach names the source model ("KOOZA", "in-breadth", "in-depth").
	Approach string
	// Lambda is the trained aggregate arrival rate in requests/second.
	Lambda float64
	// ArrivalSCV is the squared coefficient of variation of the trained
	// interarrival process (1 for Poisson).
	ArrivalSCV float64
	// Stations holds the four subsystem stations in canonical trace order
	// (network, cpu, memory, storage). Zero-demand stations are retained
	// so indices are stable.
	Stations []Station
	// Servers is the server count the twin was compiled against.
	Servers int
	// Shares is the trained per-server traffic split, hottest server
	// first, summing to 1. A single-server twin has Shares == [1].
	Shares []float64
}

// badConfig wraps a compile/query validation failure with the shared
// errs.ErrBadConfig sentinel so callers can errors.Is it.
func badConfig(format string, args ...any) error {
	return fmt.Errorf("twin: "+format+": %w", append(args, errs.ErrBadConfig)...)
}

// TotalDemand returns the sum of station demands — the no-contention
// response-time floor.
func (t *Twin) TotalDemand() float64 {
	var sum float64
	for _, s := range t.Stations {
		sum += s.Demand
	}
	return sum
}

// MaxDemand returns the bottleneck station demand D_max; 1/D_max bounds
// the sustainable per-server throughput.
func (t *Twin) MaxDemand() float64 {
	var max float64
	for _, s := range t.Stations {
		if s.Demand > max {
			max = s.Demand
		}
	}
	return max
}

// validate checks the compiled invariants (used by tests and WhatIf).
func (t *Twin) validate() error {
	if t == nil {
		return badConfig("nil twin")
	}
	if !(t.Lambda > 0) {
		return badConfig("twin needs a positive arrival rate, got %g", t.Lambda)
	}
	if t.TotalDemand() <= 0 {
		return badConfig("twin has no positive station demand")
	}
	if t.Servers < 1 || len(t.Shares) == 0 {
		return badConfig("twin needs >= 1 server with traffic shares")
	}
	return nil
}
