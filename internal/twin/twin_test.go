package twin

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"dcmodel/internal/errs"
	"dcmodel/internal/hw"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/trace"
)

// testTrace builds a deterministic hand-made workload: 200 requests, one
// class, the canonical net-cpu-mem-storage-net path, 10 req/s.
func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		arr := float64(i) * 0.1
		lbn := int64((i % 7) * 1000)
		req := trace.Request{
			ID:      int64(i),
			Class:   "get",
			Server:  i % 2,
			Arrival: arr,
			Spans: []trace.Span{
				{Subsystem: trace.Network, Start: arr, Duration: 1e-4, Bytes: int64(500 + 10*(i%5))},
				{Subsystem: trace.CPU, Start: arr + 1e-4, Duration: 2e-4, Bytes: 4096, Util: 0.5},
				{Subsystem: trace.Memory, Start: arr + 3e-4, Duration: 1e-6, Bytes: 64, Bank: i % 4},
				{Subsystem: trace.Storage, Start: arr + 4e-4, Duration: 5e-3, Bytes: 8192, LBN: lbn},
				{Subsystem: trace.Network, Start: arr + 6e-3, Duration: 1e-4, Bytes: int64(8192 + 100*(i%3))},
			},
		}
		tr.Requests = append(tr.Requests, req)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	return tr
}

func koozaTwin(t *testing.T) *Twin {
	t.Helper()
	m, err := kooza.Train(testTrace(t), kooza.Options{})
	if err != nil {
		t.Fatalf("kooza train: %v", err)
	}
	tw, err := CompileKooza(m, hw.DefaultServer(), 2)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tw
}

func TestCompileKooza(t *testing.T) {
	tw := koozaTwin(t)
	if tw.Approach != "KOOZA" {
		t.Fatalf("approach %q", tw.Approach)
	}
	if math.Abs(tw.Lambda-10) > 1 {
		t.Fatalf("lambda %g, want ~10", tw.Lambda)
	}
	if len(tw.Stations) != 4 {
		t.Fatalf("stations %d", len(tw.Stations))
	}
	for _, s := range tw.Stations {
		if s.Demand <= 0 {
			t.Errorf("station %s has demand %g, want > 0", s.Name, s.Demand)
		}
	}
	// Storage dominates this workload (seek + rotation vs microsecond
	// network/cpu work).
	if tw.MaxDemand() != tw.Stations[trace.Storage].Demand {
		t.Errorf("bottleneck is %v, want storage", tw.Stations)
	}
	if tw.Servers != 2 || len(tw.Shares) != 2 {
		t.Errorf("servers %d shares %v, want 2-server layout", tw.Servers, tw.Shares)
	}
	if math.Abs(tw.Shares[0]+tw.Shares[1]-1) > 1e-12 {
		t.Errorf("shares %v do not sum to 1", tw.Shares)
	}
}

func TestCompileInBreadthAndInDepth(t *testing.T) {
	tr := testTrace(t)
	bm, err := inbreadth.Train(tr, inbreadth.Options{})
	if err != nil {
		t.Fatalf("inbreadth train: %v", err)
	}
	bt, err := CompileInBreadth(bm, hw.DefaultServer(), 1)
	if err != nil {
		t.Fatalf("inbreadth compile: %v", err)
	}
	if bt.TotalDemand() <= 0 || bt.Lambda <= 0 {
		t.Fatalf("inbreadth twin degenerate: %+v", bt)
	}
	dm, err := indepth.Train(tr)
	if err != nil {
		t.Fatalf("indepth train: %v", err)
	}
	dt, err := CompileInDepth(dm)
	if err != nil {
		t.Fatalf("indepth compile: %v", err)
	}
	// In-depth is self-timed: its demand must reproduce the recorded
	// per-request service total (~6.4 ms in testTrace).
	want := 1e-4 + 2e-4 + 1e-6 + 5e-3 + 1e-4
	if math.Abs(dt.TotalDemand()-want) > 1e-6 {
		t.Fatalf("indepth demand %g, want %g", dt.TotalDemand(), want)
	}
}

func TestWhatIfDeterministic(t *testing.T) {
	tw := koozaTwin(t)
	q := Query{LoadFactor: 2, SLO: &SLO{Quantile: 0.95, TargetSeconds: 0.05}}
	a1, err := tw.WhatIf(q)
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	j1, _ := json.Marshal(a1)
	for i := 0; i < 10; i++ {
		a2, err := tw.WhatIf(q)
		if err != nil {
			t.Fatalf("whatif repeat: %v", err)
		}
		j2, _ := json.Marshal(a2)
		if string(j1) != string(j2) {
			t.Fatalf("answers diverged:\n%s\n%s", j1, j2)
		}
	}
}

func TestWhatIfLoadMonotone(t *testing.T) {
	tw := koozaTwin(t)
	prev := 0.0
	for _, lf := range []float64{0.5, 1, 1.5, 2} {
		a, err := tw.WhatIf(Query{LoadFactor: lf})
		if err != nil {
			t.Fatalf("load %g: %v", lf, err)
		}
		if !a.Stable {
			t.Fatalf("load %g unexpectedly unstable (util %g)", lf, a.BottleneckUtilization)
		}
		if a.MeanResponseSeconds <= prev {
			t.Fatalf("mean response not increasing: %g then %g at load %g", prev, a.MeanResponseSeconds, lf)
		}
		if a.P95Seconds < a.P50Seconds || a.P99Seconds < a.P95Seconds {
			t.Fatalf("quantiles out of order: %+v", a)
		}
		if a.MeanResponseSeconds < tw.TotalDemand() {
			t.Fatalf("response %g below demand floor %g", a.MeanResponseSeconds, tw.TotalDemand())
		}
		prev = a.MeanResponseSeconds
	}
}

func TestWhatIfSaturation(t *testing.T) {
	tw := koozaTwin(t)
	a, err := tw.WhatIf(Query{LoadFactor: 1000})
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	if a.Stable {
		t.Fatalf("1000x load should saturate, got %+v", a)
	}
	if a.BottleneckUtilization < 1 {
		t.Fatalf("unstable answer reports utilization %g < 1", a.BottleneckUtilization)
	}
	if a.MeanResponseSeconds != 0 || a.ThroughputPerSec != 0 {
		t.Fatalf("unstable answer must zero its steady-state fields: %+v", a)
	}
}

func TestWhatIfServersDown(t *testing.T) {
	tw := koozaTwin(t)
	base, err := tw.WhatIf(Query{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	down, err := tw.WhatIf(Query{ServersDown: 1})
	if err != nil {
		t.Fatalf("down: %v", err)
	}
	if down.Servers != base.Servers-1 {
		t.Fatalf("surviving servers %d, want %d", down.Servers, base.Servers-1)
	}
	if down.Stable && down.MeanResponseSeconds <= base.MeanResponseSeconds {
		t.Fatalf("losing a server should not speed things up: %g -> %g",
			base.MeanResponseSeconds, down.MeanResponseSeconds)
	}
	if _, err := tw.WhatIf(Query{ServersDown: tw.Servers}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("losing every server should be ErrBadConfig, got %v", err)
	}
}

func TestWhatIfSLOSearch(t *testing.T) {
	tw := koozaTwin(t)
	slo := SLO{Quantile: 0.95, TargetSeconds: 2 * tw.TotalDemand()}
	a, err := tw.WhatIf(Query{LoadFactor: 30, SLO: &slo})
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	if !a.SLOMet || a.ServersForSLO < 1 {
		t.Fatalf("slo search failed: %+v", a)
	}
	// The found size must actually meet the objective...
	at, err := tw.WhatIf(Query{LoadFactor: 30, Servers: a.ServersForSLO})
	if err != nil {
		t.Fatalf("at found size: %v", err)
	}
	if !at.Stable || at.P95Seconds > slo.TargetSeconds {
		t.Fatalf("found size %d does not meet slo: %+v", a.ServersForSLO, at)
	}
	// ...and be minimal (one fewer server misses it or saturates).
	if a.ServersForSLO > 1 {
		under, err := tw.WhatIf(Query{LoadFactor: 30, Servers: a.ServersForSLO - 1})
		if err != nil {
			t.Fatalf("under size: %v", err)
		}
		if under.Stable && under.P95Seconds <= slo.TargetSeconds {
			t.Fatalf("size %d already meets slo, search returned %d", a.ServersForSLO-1, a.ServersForSLO)
		}
	}
	// An impossible objective is reported, not erred.
	impossible, err := tw.WhatIf(Query{SLO: &SLO{Quantile: 0.95, TargetSeconds: tw.TotalDemand() / 100, MaxServers: 8}})
	if err != nil {
		t.Fatalf("impossible slo: %v", err)
	}
	if impossible.SLOMet || impossible.ServersForSLO != 0 {
		t.Fatalf("sub-demand slo cannot be met: %+v", impossible)
	}
}

func TestWhatIfClosedLoop(t *testing.T) {
	tw := koozaTwin(t)
	a, err := tw.WhatIf(Query{Users: 8, ThinkSeconds: 0.1})
	if err != nil {
		t.Fatalf("closed: %v", err)
	}
	if a.Solver != "mva" || !a.Stable {
		t.Fatalf("closed answer: %+v", a)
	}
	if a.ThroughputPerSec <= 0 {
		t.Fatalf("closed throughput %g", a.ThroughputPerSec)
	}
	// Asymptotic bound: X <= servers / D_max.
	bound := float64(a.Servers) / tw.MaxDemand()
	if a.ThroughputPerSec > bound+1e-9 {
		t.Fatalf("throughput %g exceeds bound %g", a.ThroughputPerSec, bound)
	}
	// More users cannot lower throughput (closed networks are monotone).
	b, err := tw.WhatIf(Query{Users: 32, ThinkSeconds: 0.1})
	if err != nil {
		t.Fatalf("closed 32: %v", err)
	}
	if b.ThroughputPerSec < a.ThroughputPerSec {
		t.Fatalf("throughput fell with more users: %g -> %g", a.ThroughputPerSec, b.ThroughputPerSec)
	}
}

func TestQueryValidation(t *testing.T) {
	tw := koozaTwin(t)
	bad := []Query{
		{LoadFactor: math.NaN()},
		{LoadFactor: math.Inf(1)},
		{LoadFactor: 2, RatePerSec: 50},
		{Servers: -1},
		{Users: 2, LoadFactor: 2},
		{ThinkSeconds: 0.5},
		{SLO: &SLO{Quantile: 1.5, TargetSeconds: 1}},
		{SLO: &SLO{Quantile: 0.95, TargetSeconds: 0}},
	}
	for i, q := range bad {
		if _, err := tw.WhatIf(q); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("query %d (%+v): want ErrBadConfig, got %v", i, q, err)
		}
	}
}

func TestSolverSelection(t *testing.T) {
	// Near-Markovian shape picks the exact Jackson tandem.
	exp := &Twin{
		Approach: "t", Lambda: 10, ArrivalSCV: 1,
		Stations: []Station{{Subsystem: trace.CPU, Name: "cpu", Demand: 0.01, SCV: 1}},
		Servers:  1, Shares: []float64{1},
	}
	if s := exp.openSolver(); s != "jackson" {
		t.Errorf("exponential shape picked %q", s)
	}
	// M/M/1 cross-check: R = 1/(mu - lambda).
	a, err := exp.WhatIf(Query{})
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	if want := 1 / (100.0 - 10.0); math.Abs(a.MeanResponseSeconds-want) > 1e-12 {
		t.Errorf("mm1 response %g, want %g", a.MeanResponseSeconds, want)
	}
	// High-variability shape falls back to Kingman.
	bursty := &Twin{
		Approach: "t", Lambda: 10, ArrivalSCV: 4,
		Stations: []Station{{Subsystem: trace.CPU, Name: "cpu", Demand: 0.01, SCV: 9}},
		Servers:  1, Shares: []float64{1},
	}
	if s := bursty.openSolver(); s != "gg1" {
		t.Errorf("bursty shape picked %q", s)
	}
	b, err := bursty.WhatIf(Query{})
	if err != nil {
		t.Fatalf("whatif bursty: %v", err)
	}
	if b.MeanResponseSeconds <= a.MeanResponseSeconds {
		t.Errorf("burstier workload should wait longer: %g vs %g",
			b.MeanResponseSeconds, a.MeanResponseSeconds)
	}
}
