package twin

import (
	"fmt"
	"math"

	"dcmodel/internal/queueing"
	"dcmodel/internal/trace"
)

// SLO is a latency service-level objective for provisioning queries:
// "how many servers keep the p<Quantile> under TargetSeconds?".
type SLO struct {
	// Quantile is the latency percentile, in (0, 1), e.g. 0.95.
	Quantile float64 `json:"quantile"`
	// TargetSeconds is the latency bound at that percentile.
	TargetSeconds float64 `json:"target_seconds"`
	// MaxServers bounds the provisioning search (default 4096).
	MaxServers int `json:"max_servers,omitempty"`
}

// Query is one what-if question against a compiled twin. The zero value
// asks "what does the trained workload look like on the trained platform".
// All fields compose: e.g. {LoadFactor: 2, ServersDown: 1} asks what
// happens when load doubles while a server is lost.
type Query struct {
	// LoadFactor scales the trained arrival rate (2 = "load doubles").
	// 0 means 1. Mutually exclusive with RatePerSec.
	LoadFactor float64 `json:"load_factor,omitempty"`
	// RatePerSec replaces the trained arrival rate outright.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Servers overrides the compiled server count. Capacity overrides
	// assume a rebalanced cluster (uniform traffic split).
	Servers int `json:"servers,omitempty"`
	// ServersDown removes servers ("a rack fails"): the hottest
	// ServersDown servers fail and their traffic redistributes evenly
	// over the survivors.
	ServersDown int `json:"servers_down,omitempty"`
	// Replicas is the replication factor: each request's storage and
	// network work is done Replicas times (R-way write amplification), so
	// those station demands scale by Replicas. 0 and 1 both mean
	// unreplicated; negative values are rejected as ErrBadConfig at the
	// twin boundary, before any solver runs.
	Replicas int `json:"replicas,omitempty"`
	// Users switches to a closed loop: this many clients circulate, each
	// thinking ThinkSeconds between requests, and the arrival-rate fields
	// must be left zero. Solved by exact MVA.
	Users int `json:"users,omitempty"`
	// ThinkSeconds is the closed-loop think time (requires Users > 0).
	ThinkSeconds float64 `json:"think_seconds,omitempty"`
	// SLO, when set, additionally searches for the smallest (balanced)
	// server count meeting the objective at the queried load.
	SLO *SLO `json:"slo,omitempty"`
}

// StationLoad is one station of the answer, reported from the hottest
// server's perspective (the twin's tail and bottleneck view).
type StationLoad struct {
	Name             string  `json:"name"`
	DemandSeconds    float64 `json:"demand_seconds"`
	Utilization      float64 `json:"utilization"`
	ResidenceSeconds float64 `json:"residence_seconds"`
}

// Answer is the closed-form result of one what-if query. Field names and
// JSON tags are a stable wire contract (served verbatim by /v1/whatif).
type Answer struct {
	// Approach names the model the twin was compiled from.
	Approach string `json:"approach"`
	// Solver records the closed-form method used: "jackson", "gg1" or
	// "mva".
	Solver string `json:"solver"`
	// LambdaPerSec is the evaluated aggregate arrival rate (closed-loop
	// answers report the achieved throughput here too).
	LambdaPerSec float64 `json:"lambda_per_sec"`
	// Servers is the surviving server count the answer describes.
	Servers int `json:"servers"`
	// Stable is false when some station saturates; response fields are
	// zero then (an unstable open queue has no steady state).
	Stable bool `json:"stable"`
	// Bottleneck names the highest-utilization station.
	Bottleneck string `json:"bottleneck"`
	// BottleneckUtilization is that station's utilization on the hottest
	// server (may exceed 1 when unstable).
	BottleneckUtilization float64 `json:"bottleneck_utilization"`
	// MeanResponseSeconds is the traffic-weighted mean response time.
	MeanResponseSeconds float64 `json:"mean_response_seconds"`
	// P50/P95/P99Seconds approximate the latency percentiles on the
	// hottest server (bottleneck-exponential tail approximation).
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// ThroughputPerSec is the sustained completion rate.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Stations details the hottest server's per-station load.
	Stations []StationLoad `json:"stations"`
	// ServersForSLO is the smallest balanced server count meeting the
	// query's SLO (0 when no SLO was asked or none found within bounds).
	ServersForSLO int `json:"servers_for_slo,omitempty"`
	// SLOMet reports whether the search found a feasible count.
	SLOMet bool `json:"slo_met,omitempty"`
}

// scvTol is the near-Markovian band: when the arrival and every service
// SCV sit within [1-scvTol, 1+scvTol], the exact M/M/1 tandem (Jackson)
// solution is used instead of the Kingman G/G/1 approximation.
const scvTol = 0.3

// defaultSLOMaxServers bounds the provisioning search when the query does
// not set SLO.MaxServers.
const defaultSLOMaxServers = 4096

// WhatIf answers a query in closed form. It is deterministic — pure float
// arithmetic, no sampling — and cheap (microseconds), so it is safe to
// call on interactive paths. Structural problems (a query that contradicts
// itself, a twin with no demand) return errors wrapping errs.ErrBadConfig;
// saturation is NOT an error: it comes back as Answer.Stable == false.
func (t *Twin) WhatIf(q Query) (Answer, error) {
	if err := t.validate(); err != nil {
		return Answer{}, err
	}
	if err := validateQuery(q); err != nil {
		return Answer{}, err
	}
	servers := t.Servers
	if q.Servers > 0 {
		servers = q.Servers
	}
	if q.ServersDown >= servers {
		return Answer{}, badConfig("servers_down %d leaves no surviving server of %d", q.ServersDown, servers)
	}
	t = t.replicated(q.Replicas)
	shares := t.queryShares(servers, q.ServersDown, q.Servers)
	ans := Answer{Approach: t.Approach, Servers: len(shares)}
	if q.Users > 0 {
		ans.Solver = "mva"
		res, err := t.evalClosed(q.Users, q.ThinkSeconds, len(shares))
		if err != nil {
			return Answer{}, err
		}
		res.fill(&ans)
	} else {
		lambda := t.Lambda
		if q.RatePerSec > 0 {
			lambda = q.RatePerSec
		} else if q.LoadFactor > 0 {
			lambda *= q.LoadFactor
		}
		ans.Solver = t.openSolver()
		res, err := t.evalOpen(lambda, shares, ans.Solver)
		if err != nil {
			return Answer{}, err
		}
		res.fill(&ans)
	}
	if q.SLO != nil {
		n, err := t.sizeForSLO(q, *q.SLO)
		if err != nil {
			return Answer{}, err
		}
		ans.ServersForSLO = n
		ans.SLOMet = n > 0
	}
	return ans, nil
}

func validateQuery(q Query) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"load_factor", q.LoadFactor},
		{"rate_per_sec", q.RatePerSec},
		{"think_seconds", q.ThinkSeconds},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return badConfig("%s must be finite and non-negative, got %g", f.name, f.v)
		}
	}
	if q.LoadFactor > 0 && q.RatePerSec > 0 {
		return badConfig("load_factor and rate_per_sec are mutually exclusive")
	}
	if q.Servers < 0 || q.ServersDown < 0 || q.Users < 0 {
		return badConfig("servers/servers_down/users must be non-negative")
	}
	if q.Replicas < 0 {
		return badConfig("replicas must be non-negative, got %d", q.Replicas)
	}
	if q.Servers > 0 && q.ServersDown >= q.Servers {
		return badConfig("servers_down %d leaves no surviving server of %d", q.ServersDown, q.Servers)
	}
	if q.Users > 0 && (q.LoadFactor > 0 || q.RatePerSec > 0) {
		return badConfig("a closed-loop query (users > 0) fixes its own rate; drop load_factor/rate_per_sec")
	}
	if q.ThinkSeconds > 0 && q.Users == 0 {
		return badConfig("think_seconds requires users > 0")
	}
	if s := q.SLO; s != nil {
		if !(s.Quantile > 0 && s.Quantile < 1) {
			return badConfig("slo quantile must be in (0, 1), got %g", s.Quantile)
		}
		if math.IsNaN(s.TargetSeconds) || math.IsInf(s.TargetSeconds, 0) || s.TargetSeconds <= 0 {
			return badConfig("slo target must be positive and finite, got %g", s.TargetSeconds)
		}
		if s.MaxServers < 0 {
			return badConfig("slo max_servers must be non-negative")
		}
	}
	return nil
}

// queryShares derives the per-server traffic split for a query: the
// trained layout when untouched, hottest-first failure with even
// redistribution for ServersDown, and a uniform split when the server
// count is overridden (capacity questions assume rebalancing).
func (t *Twin) queryShares(servers, down, override int) []float64 {
	if override > 0 && override != t.Servers {
		return uniformShares(servers - down)
	}
	shares := append([]float64(nil), t.Shares...)
	for len(shares) < servers {
		shares = append(shares, 0)
	}
	if down == 0 {
		return shares
	}
	// Shares are sorted hottest-first; the first `down` fail.
	var failed float64
	for i := 0; i < down; i++ {
		failed += shares[i]
	}
	survivors := shares[down:]
	out := make([]float64, len(survivors))
	spread := failed / float64(len(survivors))
	for i, s := range survivors {
		out[i] = s + spread
	}
	// Redistribution can reorder hotness; restore hottest-first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// replicated returns the twin with storage and network demands scaled by
// the replication factor r (each request's off-server work happens on r
// replicas). r <= 1 returns the receiver unchanged. Scaling a demand by a
// constant leaves its SCV invariant, so only Demand moves. The copy is
// shallow except for Stations, which is the only field rewritten.
func (t *Twin) replicated(r int) *Twin {
	if r <= 1 {
		return t
	}
	out := *t
	out.Stations = append([]Station(nil), t.Stations...)
	for i, s := range out.Stations {
		if s.Subsystem == trace.Storage || s.Subsystem == trace.Network {
			out.Stations[i].Demand = s.Demand * float64(r)
		}
	}
	return &out
}

func uniformShares(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

// openSolver selects the open-network method by workload shape.
func (t *Twin) openSolver() string {
	if math.Abs(t.ArrivalSCV-1) > scvTol {
		return "gg1"
	}
	for _, s := range t.Stations {
		if s.Demand > 0 && math.Abs(s.SCV-1) > scvTol {
			return "gg1"
		}
	}
	return "jackson"
}

// evalResult is one evaluation of the network at a fixed configuration.
type evalResult struct {
	lambda     float64
	stable     bool
	bottleneck string
	util       float64
	mean       float64
	p50        float64
	p95        float64
	p99        float64
	throughput float64
	stations   []StationLoad
}

func (r evalResult) fill(a *Answer) {
	a.LambdaPerSec = r.lambda
	a.Stable = r.stable
	a.Bottleneck = r.bottleneck
	a.BottleneckUtilization = r.util
	a.MeanResponseSeconds = r.mean
	a.P50Seconds = r.p50
	a.P95Seconds = r.p95
	a.P99Seconds = r.p99
	a.ThroughputPerSec = r.throughput
	a.Stations = r.stations
}

// evalOpen evaluates the open tandem network: each server is a chain of
// its subsystem stations fed lambda*share; the system mean is the
// traffic-weighted mean over servers and the tail view comes from the
// hottest server.
func (t *Twin) evalOpen(lambda float64, shares []float64, solver string) (evalResult, error) {
	res := evalResult{lambda: lambda, throughput: lambda}
	// Saturation check up front (shares are hottest-first, so server 0
	// governs): report utilizations but no steady-state times when
	// saturated.
	hot := lambda * shares[0]
	res.stations = make([]StationLoad, 0, len(t.Stations))
	for _, s := range t.Stations {
		res.stations = append(res.stations, StationLoad{
			Name:          s.Name,
			DemandSeconds: s.Demand,
			Utilization:   hot * s.Demand,
		})
	}
	bn := 0
	for i, s := range res.stations {
		if s.Utilization > res.stations[bn].Utilization {
			bn = i
		}
	}
	res.bottleneck = res.stations[bn].Name
	res.util = res.stations[bn].Utilization
	if res.util >= 1 {
		res.stable = false
		res.throughput = 0
		return res, nil
	}
	res.stable = true
	var meanSum float64
	var hotResidence []float64
	for si, share := range shares {
		if share <= 0 {
			continue
		}
		residence, err := t.serverResidence(lambda*share, solver)
		if err != nil {
			return evalResult{}, err
		}
		var total float64
		for _, r := range residence {
			total += r
		}
		meanSum += share * total
		if si == 0 {
			hotResidence = residence
		}
	}
	res.mean = meanSum
	for i := range res.stations {
		res.stations[i].ResidenceSeconds = hotResidence[i]
	}
	demand := t.demands()
	res.p50 = tailQuantile(hotResidence, demand, 0.50)
	res.p95 = tailQuantile(hotResidence, demand, 0.95)
	res.p99 = tailQuantile(hotResidence, demand, 0.99)
	return res, nil
}

// demands returns the station demand vector (index-aligned with Stations).
func (t *Twin) demands() []float64 {
	out := make([]float64, len(t.Stations))
	for i, s := range t.Stations {
		out[i] = s.Demand
	}
	return out
}

// serverResidence computes one server's per-station residence times
// (demand + queueing) at arrival rate lam, composing internal/queueing's
// analytic solvers. "jackson" treats every station as M/M/1 (exact for a
// Poisson-fed tandem of exponential stations); "gg1" uses Kingman's
// approximation with QNA-style departure-SCV propagation between stations.
func (t *Twin) serverResidence(lam float64, solver string) ([]float64, error) {
	residence := make([]float64, len(t.Stations))
	ca2 := t.ArrivalSCV
	for i, s := range t.Stations {
		if s.Demand <= 0 {
			continue
		}
		switch solver {
		case "jackson":
			q, err := queueing.NewMM1(lam, 1/s.Demand)
			if err != nil {
				return nil, fmt.Errorf("twin: station %s: %w", s.Name, err)
			}
			residence[i] = q.MeanResponse()
		default:
			q, err := queueing.NewGG1(lam, ca2, s.Demand, s.SCV)
			if err != nil {
				return nil, fmt.Errorf("twin: station %s: %w", s.Name, err)
			}
			residence[i] = q.MeanResponse()
			// Marshall/QNA departure variability feeds the next station.
			rho := q.Utilization()
			ca2 = (1-rho*rho)*ca2 + rho*rho*s.SCV
		}
	}
	return residence, nil
}

// evalClosed solves the closed loop by exact MVA: users split as evenly
// as possible over the servers, each server is a chain of its stations
// plus the think-time delay station.
func (t *Twin) evalClosed(users int, think float64, servers int) (evalResult, error) {
	stations := make([]queueing.MVAStation, 0, len(t.Stations)+1)
	for _, s := range t.Stations {
		stations = append(stations, queueing.MVAStation{Name: s.Name, Demand: s.Demand})
	}
	if think > 0 {
		stations = append(stations, queueing.MVAStation{Name: "think", Demand: think, Delay: true})
	}
	res := evalResult{stable: true}
	// Populations per server: the first (users % servers) servers take one
	// extra user; the hottest-server view is the first.
	base, extra := users/servers, users%servers
	var sumX, sumWeightedResp float64
	var hot *queueing.MVAResult
	for si := 0; si < servers; si++ {
		pop := base
		if si < extra {
			pop++
		}
		if pop == 0 {
			continue
		}
		rows, err := queueing.MVA(stations, pop)
		if err != nil {
			return evalResult{}, fmt.Errorf("twin: %w", err)
		}
		last := rows[len(rows)-1]
		sumX += last.Throughput
		resp := last.ResponseTime - think // user-perceived, think excluded
		sumWeightedResp += float64(pop) / float64(users) * resp
		if hot == nil {
			h := last
			hot = &h
		}
	}
	res.lambda = sumX
	res.throughput = sumX
	res.mean = sumWeightedResp
	hotResidence := make([]float64, len(t.Stations))
	copy(hotResidence, hot.StationResp[:len(t.Stations)])
	hotX := hot.Throughput
	res.stations = make([]StationLoad, 0, len(t.Stations))
	for i, s := range t.Stations {
		res.stations = append(res.stations, StationLoad{
			Name:             s.Name,
			DemandSeconds:    s.Demand,
			Utilization:      hotX * s.Demand,
			ResidenceSeconds: hotResidence[i],
		})
	}
	bn := 0
	for i, s := range res.stations {
		if s.Utilization > res.stations[bn].Utilization {
			bn = i
		}
	}
	res.bottleneck = res.stations[bn].Name
	res.util = res.stations[bn].Utilization
	demand := t.demands()
	res.p50 = tailQuantile(hotResidence, demand, 0.50)
	res.p95 = tailQuantile(hotResidence, demand, 0.95)
	res.p99 = tailQuantile(hotResidence, demand, 0.99)
	return res, nil
}

// tailQuantile approximates the p-quantile of the end-to-end response:
// the mean plus an exponential tail on the largest station *wait* (the
// dominant stochastic term of a tandem's tail), q(p) = R + W_b *
// (-ln(1-p) - 1). At idle every wait is zero and the quantiles collapse
// onto the deterministic demand floor, which is exact; under load the
// bottleneck's wait spreads the tail like the M/M/1 sojourn does.
func tailQuantile(residence, demand []float64, p float64) float64 {
	var total, maxWait float64
	for i, r := range residence {
		total += r
		if w := r - demand[i]; w > maxWait {
			maxWait = w
		}
	}
	return total + maxWait*(-math.Log(1-p)-1)
}

// sizeForSLO finds the smallest balanced server count whose latency
// quantile meets the SLO at the queried load, scanning up from the
// stability floor. Returns 0 when nothing within MaxServers suffices.
func (t *Twin) sizeForSLO(q Query, slo SLO) (int, error) {
	maxServers := slo.MaxServers
	if maxServers <= 0 {
		maxServers = defaultSLOMaxServers
	}
	if q.Users > 0 {
		for k := 1; k <= maxServers; k++ {
			res, err := t.evalClosed(q.Users, q.ThinkSeconds, k)
			if err != nil {
				return 0, err
			}
			if quantileAt(res, slo.Quantile) <= slo.TargetSeconds {
				return k, nil
			}
		}
		return 0, nil
	}
	lambda := t.Lambda
	if q.RatePerSec > 0 {
		lambda = q.RatePerSec
	} else if q.LoadFactor > 0 {
		lambda *= q.LoadFactor
	}
	solver := t.openSolver()
	// Stability floor: each of k balanced servers sees lambda/k, which
	// must keep the bottleneck below saturation.
	start := int(math.Floor(lambda*t.MaxDemand())) + 1
	if start < 1 {
		start = 1
	}
	for k := start; k <= maxServers; k++ {
		res, err := t.evalOpen(lambda, uniformShares(k), solver)
		if err != nil {
			return 0, err
		}
		if !res.stable {
			continue
		}
		if quantileAt(res, slo.Quantile) <= slo.TargetSeconds {
			return k, nil
		}
	}
	return 0, nil
}

// quantileAt recomputes an arbitrary quantile off an evaluation's
// per-station loads.
func quantileAt(res evalResult, p float64) float64 {
	residence := make([]float64, len(res.stations))
	demand := make([]float64, len(res.stations))
	for i, s := range res.stations {
		residence[i] = s.ResidenceSeconds
		demand[i] = s.DemandSeconds
	}
	return tailQuantile(residence, demand, p)
}
