// Package workload generates synthetic request streams: arrival processes
// (Poisson, Markov-modulated Poisson, self-similar ON/OFF superposition),
// request-class mixes, and the session-based web (SURGE-like, Barford &
// Crovella) and streaming-media (MediSyn-like, Tang et al.) generators the
// network-modeling literature compares against.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
)

// Arrivals is a stream of request arrival instants.
type Arrivals interface {
	// Times returns the first n arrival times (ascending, starting after
	// zero) using r for randomness.
	Times(n int, r *rand.Rand) []float64
}

// gapProcess adapts an interarrival-gap generator to Arrivals.
func gapTimes(n int, gap func() float64) []float64 {
	out := make([]float64, n)
	var t float64
	for i := range out {
		g := gap()
		if g < 0 {
			g = 0
		}
		t += g
		out[i] = t
	}
	return out
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct {
	// Rate is the arrival rate (requests/second).
	Rate float64
}

// Times implements Arrivals.
func (p Poisson) Times(n int, r *rand.Rand) []float64 {
	return gapTimes(n, func() float64 { return r.ExpFloat64() / p.Rate })
}

// Deterministic is a fixed-interval arrival process.
type Deterministic struct {
	// Interval is the constant gap between arrivals.
	Interval float64
}

// Times implements Arrivals.
func (d Deterministic) Times(n int, r *rand.Rand) []float64 {
	return gapTimes(n, func() float64 { return d.Interval })
}

// MMPP2 is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at Rate[state], and the hidden state flips after exponential
// holding times — the standard bursty-traffic model (Sengupta's
// "diverges from Poisson").
type MMPP2 struct {
	// Rate holds the per-state arrival rates.
	Rate [2]float64
	// Hold holds the per-state mean holding times (seconds).
	Hold [2]float64
}

// Validate reports a configuration error, if any.
func (m MMPP2) Validate() error {
	for i := 0; i < 2; i++ {
		if m.Rate[i] <= 0 {
			return fmt.Errorf("workload: mmpp rate[%d] must be positive, got %g", i, m.Rate[i])
		}
		if m.Hold[i] <= 0 {
			return fmt.Errorf("workload: mmpp hold[%d] must be positive, got %g", i, m.Hold[i])
		}
	}
	return nil
}

// Times implements Arrivals.
func (m MMPP2) Times(n int, r *rand.Rand) []float64 {
	out := make([]float64, 0, n)
	state := 0
	var now float64
	stateEnd := r.ExpFloat64() * m.Hold[state]
	for len(out) < n {
		gap := r.ExpFloat64() / m.Rate[state]
		if now+gap < stateEnd {
			now += gap
			out = append(out, now)
			continue
		}
		// State flips before the next arrival; thanks to the memoryless
		// property we can restart the arrival clock in the new state.
		now = stateEnd
		state = 1 - state
		stateEnd = now + r.ExpFloat64()*m.Hold[state]
	}
	return out
}

// MeanRate returns the long-run arrival rate of the MMPP.
func (m MMPP2) MeanRate() float64 {
	// State occupancy is proportional to holding times.
	w0 := m.Hold[0] / (m.Hold[0] + m.Hold[1])
	return w0*m.Rate[0] + (1-w0)*m.Rate[1]
}

// DefaultMMPP returns the canonical bursty two-state MMPP around a nominal
// rate: a 2x-rate ON-ish state held ~1 s and a rate/4 background state held
// ~2 s. This is the single shared parameterization the spec engine, the
// cmd tools and the examples all use, so "mmpp at rate r" means the same
// process everywhere.
func DefaultMMPP(rate float64) MMPP2 {
	return MMPP2{
		Rate: [2]float64{rate * 2, rate / 4},
		Hold: [2]float64{1, 2},
	}
}

// DefaultSelfSimilar returns the canonical self-similar superposition at a
// nominal long-run rate: 16 ON/OFF sources with Pareto(alpha=1.4) periods
// and a 25% duty cycle, so MeanRate() equals rate. The single shared
// parameterization of "selfsimilar at rate r" across the toolkit.
func DefaultSelfSimilar(rate float64) SelfSimilar {
	return SelfSimilar{Sources: 16, OnRate: rate / 4, MeanOn: 1, MeanOff: 3, Alpha: 1.4}
}

// SelfSimilar generates long-range-dependent arrivals by superposing
// ON/OFF sources with heavy-tailed (Pareto) period lengths — the classical
// construction of self-similar network traffic.
type SelfSimilar struct {
	// Sources is the number of independent ON/OFF sources.
	Sources int
	// OnRate is each source's arrival rate while ON (requests/second).
	OnRate float64
	// MeanOn and MeanOff are the mean period lengths (seconds); periods
	// are Pareto with the given Alpha (1 < Alpha < 2 gives LRD).
	MeanOn, MeanOff float64
	// Alpha is the Pareto shape of the period lengths.
	Alpha float64
}

// Validate reports a configuration error, if any.
func (s SelfSimilar) Validate() error {
	switch {
	case s.Sources < 1:
		return fmt.Errorf("workload: self-similar needs >= 1 source, got %d", s.Sources)
	case s.OnRate <= 0:
		return fmt.Errorf("workload: self-similar OnRate must be positive, got %g", s.OnRate)
	case s.MeanOn <= 0 || s.MeanOff <= 0:
		return fmt.Errorf("workload: self-similar period means must be positive")
	case s.Alpha <= 1 || s.Alpha > 3:
		return fmt.Errorf("workload: self-similar Alpha %g outside (1, 3]", s.Alpha)
	}
	return nil
}

// MeanRate returns the long-run aggregate arrival rate.
func (s SelfSimilar) MeanRate() float64 {
	duty := s.MeanOn / (s.MeanOn + s.MeanOff)
	return float64(s.Sources) * s.OnRate * duty
}

// Times implements Arrivals: sources are simulated over a growing horizon
// until n aggregate arrivals exist, then the merged stream is returned.
func (s SelfSimilar) Times(n int, r *rand.Rand) []float64 {
	// Pareto with mean m and shape a has xm = m (a-1)/a.
	onDist := stats.Pareto{Xm: s.MeanOn * (s.Alpha - 1) / s.Alpha, Alpha: s.Alpha}
	offDist := stats.Pareto{Xm: s.MeanOff * (s.Alpha - 1) / s.Alpha, Alpha: s.Alpha}
	horizon := float64(n) / s.MeanRate() * 1.5
	for attempt := 0; attempt < 20; attempt++ {
		var all []float64
		for src := 0; src < s.Sources; src++ {
			var now float64
			// Random initial phase: start OFF with probability of OFF
			// occupancy.
			on := r.Float64() < s.MeanOn/(s.MeanOn+s.MeanOff)
			for now < horizon {
				if on {
					end := now + onDist.Rand(r)
					for {
						gap := r.ExpFloat64() / s.OnRate
						if now+gap >= end || now+gap >= horizon {
							break
						}
						now += gap
						all = append(all, now)
					}
					now = end
				} else {
					now += offDist.Rand(r)
				}
				on = !on
			}
		}
		if len(all) >= n {
			sort.Float64s(all)
			return all[:n]
		}
		horizon *= 2
	}
	// Degenerate parameters: fall back to Poisson at the mean rate so the
	// caller always gets n arrivals.
	return Poisson{Rate: s.MeanRate()}.Times(n, r)
}

// FromTimes wraps precomputed arrival times as an Arrivals source (e.g. a
// trace's arrivals replayed verbatim).
type FromTimes []float64

// Times implements Arrivals; it fails soft by repeating the final gap when
// more arrivals are requested than provided.
func (f FromTimes) Times(n int, r *rand.Rand) []float64 {
	out := make([]float64, n)
	copied := copy(out, f)
	if copied == 0 {
		return out
	}
	var gap float64
	if copied >= 2 {
		gap = out[copied-1] - out[copied-2]
	}
	for i := copied; i < n; i++ {
		out[i] = out[i-1] + gap
	}
	return out
}

// Interarrivals converts arrival times to gaps.
func Interarrivals(times []float64) []float64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]float64, len(times)-1)
	for i := 1; i < len(times); i++ {
		out[i-1] = times[i] - times[i-1]
	}
	return out
}
