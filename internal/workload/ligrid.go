package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
)

// Li's two-phase model for grid workload attributes (job sizes, runtimes):
// "The first step consists of Model-Based Clustering in order to perform
// the distribution fitting. The second step generates autocorrelations
// that match the real data to create synthetic workloads."
//
// Phase 1 fits a one-dimensional Gaussian mixture to the attribute's
// marginal distribution (model-based clustering); phase 2 fits an AR(p)
// model to the attribute's normal-scores series and generates synthetic
// series whose rank correlations — and therefore autocorrelations — match
// the original, mapped back through the mixture's quantile function.

// LiModel is a fitted two-phase attribute model.
type LiModel struct {
	// GMM is the phase-1 marginal mixture (over the attribute values).
	GMM *stats.GMM
	// AR is the phase-2 autocorrelation model (over normal scores).
	AR *stats.ARModel
	// lo and hi bracket the mixture quantile search.
	lo, hi float64
}

// FitLi fits the two-phase model to an attribute series with the given
// mixture size and AR order.
func FitLi(series []float64, clusters, arOrder int, r *rand.Rand) (*LiModel, error) {
	if len(series) < 8*(arOrder+clusters) {
		return nil, fmt.Errorf("workload: li fit needs more data (%d points for %d clusters, order %d)",
			len(series), clusters, arOrder)
	}
	// Phase 1: model-based clustering of the marginal.
	data := stats.NewMatrix(len(series), 1)
	for i, x := range series {
		data.Set(i, 0, x)
	}
	gmm, err := stats.FitGMM(data, clusters, r, 200)
	if err != nil {
		return nil, fmt.Errorf("workload: li clustering: %w", err)
	}
	// Phase 2: AR on the normal-scores (rank) series.
	scores := normalScores(series)
	ar, err := stats.FitAR(scores, arOrder)
	if err != nil {
		return nil, fmt.Errorf("workload: li autocorrelation: %w", err)
	}
	m := &LiModel{GMM: gmm, AR: ar}
	m.lo = stats.Min(series)
	m.hi = stats.Max(series)
	span := m.hi - m.lo
	if span <= 0 {
		span = 1
	}
	m.lo -= span
	m.hi += span
	return m, nil
}

// normalScores maps a series to standard-normal quantiles of its ranks
// (ties broken by position).
func normalScores(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for rank, i := range idx {
		u := (float64(rank) + 0.5) / float64(n)
		out[i] = stats.NormQuantile(u)
	}
	return out
}

// mixtureCDF evaluates the 1-D mixture CDF at x.
func (m *LiModel) mixtureCDF(x float64) float64 {
	var c float64
	for i, w := range m.GMM.Weights {
		mu := m.GMM.Means.At(i, 0)
		sd := math.Sqrt(m.GMM.Vars.At(i, 0))
		c += w * stats.Normal{Mu: mu, Sigma: sd}.CDF(x)
	}
	return c
}

// Quantile inverts the mixture CDF by bisection.
func (m *LiModel) Quantile(p float64) float64 {
	if p <= 0 {
		return m.lo
	}
	if p >= 1 {
		return m.hi
	}
	lo, hi := m.lo, m.hi
	for m.mixtureCDF(lo) > p {
		lo -= hi - lo
	}
	for m.mixtureCDF(hi) < p {
		hi += hi - lo
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if m.mixtureCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Generate produces a synthetic attribute series: an AR normal-scores
// series mapped through the mixture quantile, so both the marginal
// (phase 1) and the autocorrelation structure (phase 2) match the
// original.
func (m *LiModel) Generate(n int, r *rand.Rand) []float64 {
	z := m.AR.Simulate(n, r)
	// Standardize the AR output to unit normal scale.
	mean := stats.Mean(z)
	sd := stats.StdDev(z)
	if sd == 0 {
		sd = 1
	}
	std := stats.Normal{Mu: 0, Sigma: 1}
	out := make([]float64, n)
	for i, v := range z {
		u := std.CDF((v - mean) / sd)
		out[i] = m.Quantile(u)
	}
	return out
}
