package workload

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/stats"
)

// correlatedHeavyTail builds a heavy-tailed, strongly autocorrelated
// series — a lognormal transform of an AR(1) Gaussian — the
// pseudoperiodic, long-range-dependent job-size behavior Li models on
// grid traces.
func correlatedHeavyTail(n int, r *rand.Rand) []float64 {
	out := make([]float64, n)
	var g float64
	const phi = 0.85
	for i := range out {
		g = phi*g + math.Sqrt(1-phi*phi)*r.NormFloat64()
		out[i] = 20 * math.Exp(0.8*g)
	}
	return out
}

func TestFitLiReproducesMarginalAndACF(t *testing.T) {
	r := rand.New(rand.NewSource(320))
	orig := correlatedHeavyTail(6000, r)
	m, err := FitLi(orig, 3, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	synth := m.Generate(6000, r)
	if len(synth) != 6000 {
		t.Fatalf("generated %d", len(synth))
	}
	// Phase 1: marginal matches (two-sample KS).
	ks := stats.KSTest2(orig, synth)
	if ks.Statistic > 0.06 {
		t.Errorf("marginal KS = %g", ks.Statistic)
	}
	if d := stats.RelError(stats.Mean(orig), stats.Mean(synth)); d > 0.05 {
		t.Errorf("mean deviation %g", d)
	}
	// Phase 2: autocorrelation matches over the fitted-order lags.
	oACF := stats.ACF(orig, 5)
	sACF := stats.ACF(synth, 5)
	for lag := 1; lag <= 3; lag++ {
		if math.Abs(oACF[lag]-sACF[lag]) > 0.12 {
			t.Errorf("lag-%d ACF: orig %g vs synth %g", lag, oACF[lag], sACF[lag])
		}
	}
	// Longer lags retain clear (if attenuated) correlation.
	if sACF[5] < 0.2 {
		t.Errorf("lag-5 synthetic ACF = %g, correlation structure lost", sACF[5])
	}
	// The original is strongly correlated; make sure we did not test a
	// trivial case.
	if oACF[1] < 0.5 {
		t.Fatalf("test series ACF(1) = %g, expected strong correlation", oACF[1])
	}
	// An i.i.d. resample would NOT match the ACF — the phase-2 value-add.
	iid := make([]float64, len(orig))
	for i := range iid {
		iid[i] = orig[r.Intn(len(orig))]
	}
	iidACF := stats.ACF(iid, 1)
	if math.Abs(iidACF[1]-oACF[1]) < 0.3 {
		t.Fatalf("iid shuffle unexpectedly preserves ACF; test invalid")
	}
}

func TestLiQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	orig := correlatedHeavyTail(3000, r)
	m, err := FitLi(orig, 2, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for p := 0.01; p < 1; p += 0.02 {
		q := m.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%g", p)
		}
		prev = q
	}
	if m.Quantile(0) > m.Quantile(1) {
		t.Error("quantile endpoints inverted")
	}
}

func TestFitLiErrors(t *testing.T) {
	r := rand.New(rand.NewSource(322))
	if _, err := FitLi(make([]float64, 10), 2, 2, r); err == nil {
		t.Error("short series should fail")
	}
}
