package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
)

// A MediSyn-like streaming-media workload generator (Tang et al.): sessions
// start according to a non-stationary daily rate profile, pick a media
// object by Zipf popularity, and stream it for a heavy-tailed fraction of
// its duration. It models the long-term non-stationarity, burstiness and
// request-duration behavior that pure renewal arrival processes miss.

// Stream is one generated streaming session.
type Stream struct {
	// Start is the session start time (seconds).
	Start float64
	// Object is the streamed object's popularity rank (1 = hottest).
	Object int
	// Duration is the streamed duration (seconds).
	Duration float64
	// Bitrate is the stream bitrate (bytes/second).
	Bitrate float64
}

// MediSyn configures the generator.
type MediSyn struct {
	// Objects is the media-catalog size.
	Objects int
	// ZipfSkew is the popularity skew (typically ~0.7-1.0).
	ZipfSkew float64
	// BaseRate is the mean session-arrival rate (sessions/second).
	BaseRate float64
	// DiurnalAmplitude in [0,1) scales the sinusoidal daily rate
	// modulation: rate(t) = BaseRate * (1 + A sin(2 pi t / Period)).
	DiurnalAmplitude float64
	// Period is the modulation period (seconds; a "day").
	Period float64
	// FullDuration is the distribution of full object durations (seconds).
	FullDuration stats.Dist
	// WatchFraction is the distribution of the fraction of an object
	// actually streamed (sessions often abort early), clamped to (0, 1].
	WatchFraction stats.Dist
	// Bitrate is the per-session bitrate distribution (bytes/second).
	Bitrate stats.Dist
}

// DefaultMediSyn returns a typical parameterization: 1000-object catalog
// with Zipf(0.8) popularity, lognormal durations around 5 minutes, early
// aborts, and a strong diurnal cycle.
func DefaultMediSyn() MediSyn {
	return MediSyn{
		Objects:          1000,
		ZipfSkew:         0.8,
		BaseRate:         2,
		DiurnalAmplitude: 0.6,
		Period:           86400,
		FullDuration:     stats.LogNormal{Mu: 5.7, Sigma: 0.8}, // ~300 s median
		WatchFraction:    stats.Uniform{A: 0.05, B: 1},
		Bitrate:          stats.Deterministic{Value: 375e3}, // 3 Mb/s
	}
}

// Validate reports a configuration error, if any.
func (m MediSyn) Validate() error {
	switch {
	case m.Objects < 1:
		return fmt.Errorf("workload: medisyn needs >= 1 object, got %d", m.Objects)
	case m.ZipfSkew < 0:
		return fmt.Errorf("workload: medisyn zipf skew must be non-negative, got %g", m.ZipfSkew)
	case m.BaseRate <= 0:
		return fmt.Errorf("workload: medisyn needs a positive base rate, got %g", m.BaseRate)
	case m.DiurnalAmplitude < 0 || m.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: medisyn diurnal amplitude %g outside [0,1)", m.DiurnalAmplitude)
	case m.Period <= 0:
		return fmt.Errorf("workload: medisyn needs a positive period, got %g", m.Period)
	case m.FullDuration == nil || m.WatchFraction == nil || m.Bitrate == nil:
		return fmt.Errorf("workload: medisyn needs all three distributions")
	}
	return nil
}

// Generate produces n streaming sessions via thinning of the non-stationary
// Poisson arrival process, sorted by start time.
func (m MediSyn) Generate(n int, r *rand.Rand) ([]Stream, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	pop := stats.NewZipf(m.ZipfSkew, m.Objects)
	maxRate := m.BaseRate * (1 + m.DiurnalAmplitude)
	out := make([]Stream, 0, n)
	var now float64
	for len(out) < n {
		// Thinning: candidate events at maxRate, accepted with
		// probability rate(t)/maxRate.
		now += r.ExpFloat64() / maxRate
		rate := m.BaseRate * (1 + m.DiurnalAmplitude*math.Sin(2*math.Pi*now/m.Period))
		if r.Float64()*maxRate > rate {
			continue
		}
		full := m.FullDuration.Rand(r)
		if full < 1 {
			full = 1
		}
		frac := m.WatchFraction.Rand(r)
		if frac <= 0 {
			frac = 0.01
		}
		if frac > 1 {
			frac = 1
		}
		bitrate := m.Bitrate.Rand(r)
		if bitrate <= 0 {
			bitrate = 1
		}
		out = append(out, Stream{
			Start:    now,
			Object:   int(pop.Rand(r)),
			Duration: full * frac,
			Bitrate:  bitrate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// StreamStarts extracts session start times.
func StreamStarts(streams []Stream) []float64 {
	out := make([]float64, len(streams))
	for i, s := range streams {
		out[i] = s.Start
	}
	return out
}

// ConcurrentStreams returns the number of sessions active at time t.
func ConcurrentStreams(streams []Stream, t float64) int {
	var n int
	for _, s := range streams {
		if s.Start <= t && t < s.Start+s.Duration {
			n++
		}
	}
	return n
}
