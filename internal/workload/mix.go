package workload

import (
	"fmt"
	"math/rand"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// ClassSpec describes one request class of a workload mix.
type ClassSpec struct {
	// Name labels the class in traces (e.g. "read64K").
	Name string
	// Weight is the class's share of the request stream.
	Weight float64
	// Op is the storage operation the class performs.
	Op trace.Op
	// Size is the request-size distribution in bytes.
	Size stats.Dist
	// SequentialProb is the probability an I/O continues sequentially from
	// the class's previous I/O instead of seeking to a random location —
	// the spatial-locality knob.
	SequentialProb float64
}

// Mix is a weighted set of request classes.
type Mix struct {
	Classes []ClassSpec

	cum   []float64
	alias stats.Alias
}

// NewMix validates the classes and returns a Mix.
func NewMix(classes []ClassSpec) (*Mix, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: mix needs at least one class")
	}
	var sum float64
	cum := make([]float64, len(classes))
	for i, c := range classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("workload: class %q has negative weight", c.Name)
		}
		if c.Size == nil {
			return nil, fmt.Errorf("workload: class %q needs a size distribution", c.Name)
		}
		if c.Op != trace.OpRead && c.Op != trace.OpWrite {
			return nil, fmt.Errorf("workload: class %q needs a read or write op", c.Name)
		}
		if c.SequentialProb < 0 || c.SequentialProb > 1 {
			return nil, fmt.Errorf("workload: class %q sequential probability %g outside [0,1]", c.Name, c.SequentialProb)
		}
		sum += c.Weight
		cum[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: mix weights must sum to a positive value")
	}
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = c.Weight
	}
	return &Mix{Classes: classes, cum: cum, alias: stats.MustAlias(weights)}, nil
}

// Pick draws a class index according to the weights: O(1) via the alias
// table frozen by NewMix, with a linear scan for hand-assembled mixes.
func (m *Mix) Pick(r *rand.Rand) int {
	if !m.alias.Empty() {
		return m.alias.Draw(r)
	}
	u := r.Float64() * m.cum[len(m.cum)-1]
	for i, c := range m.cum {
		if u <= c {
			return i
		}
	}
	return len(m.cum) - 1
}

// ReadWriteRatio returns the weight fraction of read classes, one of the
// I/O features Gulati et al. model.
func (m *Mix) ReadWriteRatio() float64 {
	var reads, total float64
	for _, c := range m.Classes {
		total += c.Weight
		if c.Op == trace.OpRead {
			reads += c.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return reads / total
}

// Table2Mix returns the two request classes of the paper's Table 2
// validation: a 64 KB read and a 4 MB write, in equal proportion.
func Table2Mix() *Mix {
	m, err := NewMix([]ClassSpec{
		{
			Name:           "read64K",
			Weight:         1,
			Op:             trace.OpRead,
			Size:           stats.Deterministic{Value: 64 << 10},
			SequentialProb: 0.05,
		},
		{
			Name:           "write4M",
			Weight:         1,
			Op:             trace.OpWrite,
			Size:           stats.Deterministic{Value: 4 << 20},
			SequentialProb: 0.7,
		},
	})
	if err != nil {
		// Static configuration; unreachable by construction.
		panic(err)
	}
	return m
}

// OLTPMix returns an OLTP-like I/O mix in the style of production database
// traces (Kavalanekar et al.): small random page reads and writes at a
// 2:1 read:write ratio with log-file appends.
func OLTPMix() *Mix {
	m, err := NewMix([]ClassSpec{
		{
			Name:           "pageRead",
			Weight:         0.6,
			Op:             trace.OpRead,
			Size:           stats.Deterministic{Value: 8 << 10},
			SequentialProb: 0.02,
		},
		{
			Name:           "pageWrite",
			Weight:         0.3,
			Op:             trace.OpWrite,
			Size:           stats.Deterministic{Value: 8 << 10},
			SequentialProb: 0.02,
		},
		{
			Name:           "logAppend",
			Weight:         0.1,
			Op:             trace.OpWrite,
			Size:           stats.LogNormal{Mu: 10.5, Sigma: 0.5}, // ~36 KB median
			SequentialProb: 0.95,
		},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// WebMix returns a heavy-tailed mixed read/write workload: lognormal-body
// reads and larger writes, the kind of object mix web-serving traces show.
func WebMix() *Mix {
	m, err := NewMix([]ClassSpec{
		{
			Name:           "get",
			Weight:         0.8,
			Op:             trace.OpRead,
			Size:           stats.LogNormal{Mu: 9.5, Sigma: 1.2}, // ~13 KB median
			SequentialProb: 0.2,
		},
		{
			Name:           "put",
			Weight:         0.2,
			Op:             trace.OpWrite,
			Size:           stats.LogNormal{Mu: 11, Sigma: 1.0}, // ~60 KB median
			SequentialProb: 0.6,
		},
	})
	if err != nil {
		panic(err)
	}
	return m
}
