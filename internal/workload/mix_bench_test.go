package workload

import (
	"math/rand"
	"testing"
)

func BenchmarkMixPick(b *testing.B) {
	m := OLTPMix()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = m.Pick(r)
	}
	_ = sink
}
