package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
)

// SURGE-like session-based web workload generator (Barford & Crovella):
// users arrive, fetch pages consisting of several embedded objects with
// heavy-tailed sizes, and think between pages. Joo et al. contrast exactly
// this user-variability model with an infinite-source constant-load model
// and find the two produce very different results — the comparison the
// webtier example reproduces.

// WebRequest is one object fetch emitted by the generator.
type WebRequest struct {
	// Time is the fetch instant.
	Time float64
	// Bytes is the object size.
	Bytes int64
	// Session and Page identify the generating user session and page.
	Session, Page int
}

// Surge configures the session generator.
type Surge struct {
	// Sessions is the number of user sessions.
	Sessions int
	// SessionRate is the session-arrival rate (sessions/second).
	SessionRate float64
	// PagesPerSession is the distribution of pages viewed per session.
	PagesPerSession stats.Dist
	// ObjectsPerPage is the distribution of embedded objects per page.
	ObjectsPerPage stats.Dist
	// ObjectBytes is the object-size distribution (heavy-tailed).
	ObjectBytes stats.Dist
	// ThinkTime is the inter-page think-time distribution (heavy-tailed
	// OFF periods).
	ThinkTime stats.Dist
	// ObjectGap is the within-page inter-object gap distribution.
	ObjectGap stats.Dist
}

// DefaultSurge returns the canonical SURGE parameterization: Pareto page
// and object counts, lognormal-body/Pareto-tail object sizes approximated
// by a lognormal, Pareto think times.
func DefaultSurge(sessions int) Surge {
	return Surge{
		Sessions:        sessions,
		SessionRate:     5,
		PagesPerSession: stats.Pareto{Xm: 1, Alpha: 1.5},
		ObjectsPerPage:  stats.Pareto{Xm: 1, Alpha: 2.43},
		ObjectBytes:     stats.LogNormal{Mu: 9.357, Sigma: 1.318},
		ThinkTime:       stats.Pareto{Xm: 1, Alpha: 1.4},
		ObjectGap:       stats.Exponential{Rate: 50},
	}
}

// Validate reports a configuration error, if any.
func (s Surge) Validate() error {
	switch {
	case s.Sessions < 1:
		return fmt.Errorf("workload: surge needs >= 1 session, got %d", s.Sessions)
	case s.SessionRate <= 0:
		return fmt.Errorf("workload: surge needs a positive session rate, got %g", s.SessionRate)
	case s.PagesPerSession == nil || s.ObjectsPerPage == nil || s.ObjectBytes == nil ||
		s.ThinkTime == nil || s.ObjectGap == nil:
		return fmt.Errorf("workload: surge needs all five distributions")
	}
	return nil
}

// Generate produces the object-fetch stream of all sessions, sorted by
// time.
func (s Surge) Generate(r *rand.Rand) ([]WebRequest, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []WebRequest
	var sessionStart float64
	for sess := 0; sess < s.Sessions; sess++ {
		sessionStart += r.ExpFloat64() / s.SessionRate
		now := sessionStart
		pages := int(s.PagesPerSession.Rand(r))
		if pages < 1 {
			pages = 1
		}
		for p := 0; p < pages; p++ {
			objects := int(s.ObjectsPerPage.Rand(r))
			if objects < 1 {
				objects = 1
			}
			for o := 0; o < objects; o++ {
				if o > 0 {
					gap := s.ObjectGap.Rand(r)
					if gap < 0 {
						gap = 0
					}
					now += gap
				}
				bytes := int64(s.ObjectBytes.Rand(r))
				if bytes < 1 {
					bytes = 1
				}
				out = append(out, WebRequest{Time: now, Bytes: bytes, Session: sess, Page: p})
			}
			think := s.ThinkTime.Rand(r)
			if think < 0 {
				think = 0
			}
			now += think
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// InfiniteSource is the strawman Joo et al. compare SURGE against: a single
// source transferring constant-size objects back-to-back at a fixed rate,
// with no user variability.
type InfiniteSource struct {
	// Rate is the constant request rate.
	Rate float64
	// Bytes is the constant object size.
	Bytes int64
}

// Generate produces n requests at fixed intervals.
func (s InfiniteSource) Generate(n int) []WebRequest {
	out := make([]WebRequest, n)
	for i := range out {
		out[i] = WebRequest{Time: float64(i+1) / s.Rate, Bytes: s.Bytes}
	}
	return out
}

// RequestTimes extracts arrival instants from a web-request stream.
func RequestTimes(reqs []WebRequest) []float64 {
	out := make([]float64, len(reqs))
	for i, q := range reqs {
		out[i] = q.Time
	}
	return out
}

// RequestSizes extracts object sizes from a web-request stream.
func RequestSizes(reqs []WebRequest) []float64 {
	out := make([]float64, len(reqs))
	for i, q := range reqs {
		out[i] = float64(q.Bytes)
	}
	return out
}
