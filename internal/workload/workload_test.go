package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func assertAscending(t *testing.T, times []float64) {
	t.Helper()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("times not ascending at %d: %g < %g", i, times[i], times[i-1])
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	times := Poisson{Rate: 10}.Times(20000, r)
	if len(times) != 20000 {
		t.Fatalf("len = %d", len(times))
	}
	assertAscending(t, times)
	gaps := Interarrivals(times)
	approx(t, stats.Mean(gaps), 0.1, 0.005, "poisson mean gap")
	approx(t, stats.SquaredCoefVar(gaps), 1, 0.1, "poisson SCV")
	idc := stats.IndexOfDispersion(times, 1)
	approx(t, idc, 1, 0.15, "poisson IDC")
}

func TestDeterministicArrivals(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	times := Deterministic{Interval: 0.5}.Times(10, r)
	for i, tt := range times {
		approx(t, tt, 0.5*float64(i+1), 1e-12, "deterministic times")
	}
}

func TestMMPP2Burstier(t *testing.T) {
	r := rand.New(rand.NewSource(302))
	m := MMPP2{Rate: [2]float64{100, 2}, Hold: [2]float64{1, 1}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	times := m.Times(40000, r)
	assertAscending(t, times)
	gaps := Interarrivals(times)
	// MMPP interarrivals are hyperexponential-like: SCV > 1.
	if scv := stats.SquaredCoefVar(gaps); scv < 1.5 {
		t.Errorf("MMPP SCV = %g, want > 1.5", scv)
	}
	// Long-run rate close to occupancy-weighted mean.
	dur := times[len(times)-1]
	approx(t, float64(len(times))/dur, m.MeanRate(), 0.15*m.MeanRate(), "MMPP rate")
	if idc := stats.IndexOfDispersion(times, 1); idc < 3 {
		t.Errorf("MMPP IDC = %g, want >> 1", idc)
	}
}

func TestMMPP2Validate(t *testing.T) {
	if err := (MMPP2{Rate: [2]float64{0, 1}, Hold: [2]float64{1, 1}}).Validate(); err == nil {
		t.Error("zero rate should fail")
	}
	if err := (MMPP2{Rate: [2]float64{1, 1}, Hold: [2]float64{1, 0}}).Validate(); err == nil {
		t.Error("zero hold should fail")
	}
}

func TestSelfSimilarLRD(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	s := SelfSimilar{Sources: 32, OnRate: 40, MeanOn: 1, MeanOff: 2, Alpha: 1.4}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	times := s.Times(60000, r)
	if len(times) != 60000 {
		t.Fatalf("len = %d", len(times))
	}
	assertAscending(t, times)
	ss, err := stats.AnalyzeSelfSimilarity(times, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ss.HurstRS < 0.6 {
		t.Errorf("self-similar Hurst = %g, want > 0.6", ss.HurstRS)
	}
	if ss.IDCLong < 2 {
		t.Errorf("self-similar long-window IDC = %g, want >> 1", ss.IDCLong)
	}
	// Compare against Poisson at the same rate: Hurst should be clearly
	// higher.
	pt := Poisson{Rate: s.MeanRate()}.Times(60000, r)
	ps, err := stats.AnalyzeSelfSimilarity(pt, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ss.HurstRS <= ps.HurstRS+0.05 {
		t.Errorf("self-similar Hurst %g not above Poisson %g", ss.HurstRS, ps.HurstRS)
	}
}

func TestSelfSimilarValidate(t *testing.T) {
	base := SelfSimilar{Sources: 4, OnRate: 1, MeanOn: 1, MeanOff: 1, Alpha: 1.5}
	tests := []func(*SelfSimilar){
		func(s *SelfSimilar) { s.Sources = 0 },
		func(s *SelfSimilar) { s.OnRate = 0 },
		func(s *SelfSimilar) { s.MeanOn = 0 },
		func(s *SelfSimilar) { s.MeanOff = -1 },
		func(s *SelfSimilar) { s.Alpha = 1 },
		func(s *SelfSimilar) { s.Alpha = 5 },
	}
	for i, mutate := range tests {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base should validate: %v", err)
	}
}

func TestFromTimes(t *testing.T) {
	r := rand.New(rand.NewSource(304))
	f := FromTimes{1, 2, 4}
	got := f.Times(5, r)
	want := []float64{1, 2, 4, 6, 8}
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "from-times extension")
	}
	short := f.Times(2, r)
	if short[0] != 1 || short[1] != 2 {
		t.Error("truncation wrong")
	}
	empty := FromTimes{}.Times(3, r)
	if empty[0] != 0 || empty[2] != 0 {
		t.Error("empty FromTimes should produce zeros")
	}
}

func TestInterarrivals(t *testing.T) {
	if Interarrivals([]float64{1}) != nil {
		t.Error("single time should give nil")
	}
	gaps := Interarrivals([]float64{1, 3, 6})
	if len(gaps) != 2 || gaps[0] != 2 || gaps[1] != 3 {
		t.Errorf("gaps = %v", gaps)
	}
}

func TestNewMixValidation(t *testing.T) {
	valid := []ClassSpec{{
		Name: "r", Weight: 1, Op: trace.OpRead,
		Size: stats.Deterministic{Value: 4096},
	}}
	if _, err := NewMix(valid); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	tests := []struct {
		name    string
		classes []ClassSpec
	}{
		{"empty", nil},
		{"negative weight", []ClassSpec{{Name: "x", Weight: -1, Op: trace.OpRead, Size: stats.Deterministic{Value: 1}}}},
		{"nil size", []ClassSpec{{Name: "x", Weight: 1, Op: trace.OpRead}}},
		{"bad op", []ClassSpec{{Name: "x", Weight: 1, Op: trace.OpNone, Size: stats.Deterministic{Value: 1}}}},
		{"bad seq prob", []ClassSpec{{Name: "x", Weight: 1, Op: trace.OpRead, Size: stats.Deterministic{Value: 1}, SequentialProb: 2}}},
		{"zero weights", []ClassSpec{{Name: "x", Weight: 0, Op: trace.OpRead, Size: stats.Deterministic{Value: 1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMix(tt.classes); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestMixPickProportions(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	m, err := NewMix([]ClassSpec{
		{Name: "a", Weight: 3, Op: trace.OpRead, Size: stats.Deterministic{Value: 1}},
		{Name: "b", Weight: 1, Op: trace.OpWrite, Size: stats.Deterministic{Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a int
	const n = 40000
	for i := 0; i < n; i++ {
		if m.Pick(r) == 0 {
			a++
		}
	}
	approx(t, float64(a)/n, 0.75, 0.01, "mix proportions")
	approx(t, m.ReadWriteRatio(), 0.75, 1e-12, "read:write ratio")
}

func TestBuiltinMixes(t *testing.T) {
	t2 := Table2Mix()
	if len(t2.Classes) != 2 || t2.Classes[0].Name != "read64K" || t2.Classes[1].Name != "write4M" {
		t.Errorf("table2 mix = %+v", t2.Classes)
	}
	if t2.Classes[0].Size.Mean() != 64<<10 || t2.Classes[1].Size.Mean() != 4<<20 {
		t.Error("table2 sizes wrong")
	}
	web := WebMix()
	approx(t, web.ReadWriteRatio(), 0.8, 1e-12, "web mix read ratio")
}

func TestSurgeGenerate(t *testing.T) {
	r := rand.New(rand.NewSource(306))
	s := DefaultSurge(300)
	reqs, err := s.Generate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 300 {
		t.Fatalf("generated %d requests, want >= sessions", len(reqs))
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time }) {
		t.Error("requests not time-sorted")
	}
	sizes := RequestSizes(reqs)
	// Heavy-tailed object sizes: max far above median.
	if stats.Max(sizes) < 20*stats.Median(sizes) {
		t.Errorf("sizes not heavy-tailed: max %g median %g", stats.Max(sizes), stats.Median(sizes))
	}
	for _, q := range reqs {
		if q.Bytes < 1 || q.Time < 0 {
			t.Fatalf("bad request %+v", q)
		}
	}
}

func TestSurgeBurstierThanInfiniteSource(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	s := DefaultSurge(2000)
	reqs, err := s.Generate(r)
	if err != nil {
		t.Fatal(err)
	}
	times := RequestTimes(reqs)
	surgeIDC := stats.IndexOfDispersion(times, 1)
	inf := InfiniteSource{Rate: 10, Bytes: 10000}.Generate(5000)
	infIDC := stats.IndexOfDispersion(RequestTimes(inf), 1)
	if surgeIDC <= infIDC {
		t.Errorf("SURGE IDC %g not above infinite-source IDC %g", surgeIDC, infIDC)
	}
	if infIDC > 0.1 {
		t.Errorf("infinite source should be near-deterministic, IDC = %g", infIDC)
	}
}

func TestSurgeValidate(t *testing.T) {
	s := DefaultSurge(0)
	if _, err := s.Generate(rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero sessions should fail")
	}
	s = DefaultSurge(10)
	s.ObjectBytes = nil
	if err := s.Validate(); err == nil {
		t.Error("nil distribution should fail")
	}
	s = DefaultSurge(10)
	s.SessionRate = 0
	if err := s.Validate(); err == nil {
		t.Error("zero session rate should fail")
	}
}

func TestMediSynGenerate(t *testing.T) {
	r := rand.New(rand.NewSource(308))
	m := DefaultMediSyn()
	streams, err := m.Generate(5000, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 5000 {
		t.Fatalf("generated %d streams", len(streams))
	}
	if !sort.SliceIsSorted(streams, func(i, j int) bool { return streams[i].Start < streams[j].Start }) {
		t.Error("streams not sorted")
	}
	// Zipf popularity: rank 1 must dominate.
	counts := make(map[int]int)
	for _, s := range streams {
		counts[s.Object]++
		if s.Object < 1 || s.Object > m.Objects {
			t.Fatalf("object rank %d out of range", s.Object)
		}
		if s.Duration <= 0 || s.Bitrate <= 0 {
			t.Fatalf("bad stream %+v", s)
		}
	}
	if counts[1] < counts[100] {
		t.Errorf("rank 1 count %d not above rank 100 count %d", counts[1], counts[100])
	}
	// Non-stationarity: arrival counts in peak vs trough windows differ.
	starts := StreamStarts(streams)
	counts2 := stats.CountsInWindows(starts, m.Period/4)
	if len(counts2) >= 4 {
		if stats.Max(counts2) < 1.2*stats.Mean(counts2) {
			t.Errorf("diurnal modulation not visible: counts %v", counts2[:4])
		}
	}
}

func TestMediSynValidate(t *testing.T) {
	tests := []func(*MediSyn){
		func(m *MediSyn) { m.Objects = 0 },
		func(m *MediSyn) { m.ZipfSkew = -1 },
		func(m *MediSyn) { m.BaseRate = 0 },
		func(m *MediSyn) { m.DiurnalAmplitude = 1 },
		func(m *MediSyn) { m.Period = 0 },
		func(m *MediSyn) { m.FullDuration = nil },
	}
	for i, mutate := range tests {
		m := DefaultMediSyn()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestConcurrentStreams(t *testing.T) {
	streams := []Stream{
		{Start: 0, Duration: 10},
		{Start: 5, Duration: 10},
		{Start: 20, Duration: 1},
	}
	if got := ConcurrentStreams(streams, 7); got != 2 {
		t.Errorf("concurrent at 7 = %d, want 2", got)
	}
	if got := ConcurrentStreams(streams, 50); got != 0 {
		t.Errorf("concurrent at 50 = %d, want 0", got)
	}
}
