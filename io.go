package dcmodel

import (
	"io"

	"dcmodel/internal/trace"
)

// Trace I/O re-exports.

// WriteTraceCSV writes a trace in the flat span-per-row CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return trace.WriteCSV(w, tr) }

// ReadTraceCSV reads a trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceJSON writes a trace as JSON.
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// ReadTraceJSON reads a trace written by WriteTraceJSON.
func ReadTraceJSON(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }
