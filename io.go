package dcmodel

import (
	"io"

	"dcmodel/internal/trace"
)

// Trace I/O re-exports.

// WriteTraceCSV writes a trace in the flat span-per-row CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return trace.WriteCSV(w, tr) }

// ReadTraceCSV reads a trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceBinary writes a trace in the compact binary columnar trace-v2
// format (the `.dct` file format of the CLIs and the
// application/x-dcmodel-trace-v2 ingest media type): several times faster
// to encode and decode than CSV, lossless both ways.
func WriteTraceBinary(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// ReadTraceBinary reads a trace written by WriteTraceBinary.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// TraceContentTypeV2 is the HTTP media type of a trace-v2 stream; POST it
// to the daemon's /v1/ingest or /v1/replay to select the binary codec.
const TraceContentTypeV2 = trace.ContentTypeV2

// WriteTraceJSON writes a trace as JSON.
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// ReadTraceJSON reads a trace written by WriteTraceJSON.
func ReadTraceJSON(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }
