package dcmodel

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRecordRequestsFacade(t *testing.T) {
	tr := simulate(t, 1000, 20, 20)
	var c TraceCollector
	started, sampled, err := RecordRequests(tr, 100, &c)
	if err != nil {
		t.Fatal(err)
	}
	if started != 1000 || sampled != 10 || c.Len() != 10 {
		t.Errorf("sampling %d/%d, collected %d", started, sampled, c.Len())
	}

	// The same call composes with a bounded ring: only the most recent
	// trees survive.
	ring := NewTraceRing(4)
	if _, _, err := RecordRequests(tr, 100, ring); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 4 || ring.Recorded() != 10 {
		t.Errorf("ring holds %d of %d recorded", ring.Len(), ring.Recorded())
	}

	if _, _, err := RecordRequests(tr, 0, &c); err == nil {
		t.Error("sampleEvery=0 accepted")
	}
	if _, _, err := RecordRequests(tr, 1, nil); err == nil {
		t.Error("nil recorder accepted")
	}
}

// TestWithObserverFacade: Train with an Observer records one span tree
// per call and fills the observer's stage histograms, without changing
// the trained model.
func TestWithObserverFacade(t *testing.T) {
	tr := simulate(t, 800, 20, 21)

	var c TraceCollector
	o := &Observer{Registry: NewMetricsRegistry(), Recorder: &c}
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		if _, err := Train(tr, a, WithObserver(o)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("observer recorded %d trees, want 3", c.Len())
	}
	tree := c.Trees()[0]
	if tree.Root.Span.Name != "train:KOOZA" || tree.Count != 2 {
		t.Fatalf("first tree: root %q with %d spans, want train:KOOZA with 2",
			tree.Root.Span.Name, tree.Count)
	}
	if got := tree.Root.Children[0].Span.Name; got != "fit.kooza" {
		t.Fatalf("stage span = %q, want fit.kooza", got)
	}

	// The stage histograms land on the observer's registry.
	var b strings.Builder
	o.Registry.WriteText(&b)
	if !strings.Contains(b.String(), `dcmodel_stage_seconds_count{stage="fit.kooza"} 1`) {
		t.Fatalf("stage histogram missing from registry:\n%s", b.String())
	}

	// Observed and unobserved training produce identical models.
	plain, err := Train(tr, Kooza)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Train(tr, Kooza, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Synthesize(4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := observed.Synthesize(4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Requests {
		if a.Requests[i].Latency() != bb.Requests[i].Latency() {
			t.Fatalf("observer changed the trained model at request %d", i)
		}
	}
}

func TestWithObserverNilSafe(t *testing.T) {
	tr := simulate(t, 500, 20, 22)
	// A nil observer (and an observer with nil halves) must be inert.
	if _, err := Train(tr, Kooza, WithObserver(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(tr, Kooza, WithObserver(&Observer{})); err != nil {
		t.Fatal(err)
	}
}
