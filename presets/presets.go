// Package presets embeds the shipped workload-scenario library: one JSON
// spec per named scenario, parseable by internal/spec. The files live in
// this directory so both the CLI tools (which read them from disk as
// presets/<name>.json) and the library (which reads them from the embedded
// filesystem, independent of the working directory) see the same bytes.
//
// The taxonomy follows the workload classes the datacenter-modeling
// literature exercises: interactive serving (chat), shared-prefix
// retrieval (rag), batch processing (mapreduce), many-to-one incast
// (incast), diurnal web traffic (webtier) and memory-bound analytics
// (analytics).
package presets

import (
	"embed"
	"sort"
	"strings"
)

//go:embed *.json
var fs embed.FS

// Names returns the embedded preset names (file base names without the
// .json extension), sorted.
func Names() []string {
	entries, err := fs.ReadDir(".")
	if err != nil {
		// The embedded FS always lists "."; unreachable by construction.
		panic(err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Read returns the raw spec bytes of the named preset and whether it
// exists.
func Read(name string) ([]byte, bool) {
	b, err := fs.ReadFile(name + ".json")
	if err != nil {
		return nil, false
	}
	return b, true
}
