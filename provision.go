package dcmodel

import (
	"context"
	"fmt"

	"dcmodel/internal/optimize"
	"dcmodel/internal/spec"
	"dcmodel/internal/twin"
)

// Provisioning-optimizer re-exports. The same Request/Plan types — same
// fields, same JSON tags — are the wire contract of the dcmodel.Provision
// facade, the provision CLI and the daemon's POST /v1/provision, so a plan
// serialized by any of the three deserializes in the others.
type (
	// ProvisionRequest describes one provisioning search: the workload,
	// the latency/cost objective, the configuration space to search, and
	// the search strategy. Zero fields take the documented defaults.
	ProvisionRequest = optimize.Request
	// Plan is the provisioning answer: chosen configuration, predicted
	// and DES-validated performance, cost, and the full search audit
	// trail. Infeasibility is in-band (Feasible false) alongside
	// ErrNoFeasibleConfig, mirroring the what-if saturation convention.
	Plan = optimize.Plan
	// ProvisionConfig is one point of the configuration space: servers,
	// platform, DVFS operating point, replication factor.
	ProvisionConfig = optimize.Config
	// ProvisionSpace bounds the configuration search.
	ProvisionSpace = optimize.Space
	// ProvisionObjective is the latency SLO plus the cost weights the
	// search minimizes over feasible configurations.
	ProvisionObjective = optimize.Objective
	// ProvisionEvaluation is one closed-form (twin) assessment of a
	// configuration.
	ProvisionEvaluation = optimize.Evaluation
	// ProvisionStep is one entry of a Plan's search audit trail.
	ProvisionStep = optimize.Step
	// ProvisionDESResult is one discrete-event validation run of a
	// frontier configuration.
	ProvisionDESResult = optimize.DESResult
)

// Provisioning strategy wire names, accepted in ProvisionRequest.Strategy.
const (
	// StrategyCoordinate is deterministic coordinate descent (default).
	StrategyCoordinate = optimize.StrategyCoordinate
	// StrategyEvolve is the (μ+λ) evolutionary search on SplitMix64
	// sub-streams.
	StrategyEvolve = optimize.StrategyEvolve
)

// ProvisionPlatforms returns the hardware catalog the optimizer searches
// over (referenced by name in ProvisionSpace.Platforms).
func ProvisionPlatforms() []optimize.PlatformSpec { return optimize.Platforms() }

// Provision runs the closed-loop provisioning search: train a workload
// model on the request's trace (or spec-generated workload), compile its
// analytical twin on every candidate platform, search the configuration
// space twin-first for the cheapest configuration meeting the objective,
// and validate the Pareto frontier with discrete-event simulation of the
// SQS farm.
//
// The returned Plan is byte-identical for any Workers value and any
// ordering of InitialPopulation. When no configuration in the space meets
// the objective, Provision returns the best-effort Plan (audit trail
// included, Feasible false) together with an error wrapping
// ErrNoFeasibleConfig; structural problems wrap ErrBadConfig.
//
//	plan, err := dcmodel.Provision(ctx, dcmodel.ProvisionRequest{
//		Spec:      "mapreduce",
//		Objective: dcmodel.ProvisionObjective{TargetSeconds: 0.05},
//	})
func Provision(ctx context.Context, req ProvisionRequest) (Plan, error) {
	// Remember whether the caller set a seed before defaulting: an
	// explicit seed overrides a spec's own, an unset one does not —
	// matching the provision CLI's -seed semantics.
	explicitSeed := req.Seed != 0
	req = req.WithDefaults()
	approach, err := ParseApproach(modelOrDefault(req.Model))
	if err != nil {
		return Plan{}, err
	}
	tr := req.Trace
	if tr == nil {
		if req.Spec == "" {
			return Plan{}, fmt.Errorf("dcmodel: provision needs a Trace or a Spec: %w", ErrBadConfig)
		}
		tr, err = provisionTraceFromSpec(req, explicitSeed)
		if err != nil {
			return Plan{}, err
		}
	}
	m, err := Train(tr, approach)
	if err != nil {
		return Plan{}, err
	}
	twins, err := ProvisionTwins(m, req.Space)
	if err != nil {
		return Plan{}, err
	}
	des, err := optimize.NewDESModel(tr, req)
	if err != nil {
		return Plan{}, err
	}
	return optimize.Search(ctx, optimize.Input{Twins: twins, DES: des}, req)
}

// ProvisionTwins compiles the trained model's analytical twin on every
// platform of the (defaulted) space — the per-platform twin table
// optimize.Search runs against. Exported for callers that drive
// optimize.Search directly with a model they already trained.
func ProvisionTwins(m Model, space ProvisionSpace) (map[string]*twin.Twin, error) {
	space = optimize.SpaceDefaults(space)
	twins := make(map[string]*twin.Twin, len(space.Platforms))
	for _, name := range space.Platforms {
		pspec, ok := optimize.PlatformByName(name)
		if !ok {
			return nil, fmt.Errorf("dcmodel: unknown platform %q: %w", name, ErrBadConfig)
		}
		tw, err := BuildTwin(m, Platform{NewServer: pspec.NewServer})
		if err != nil {
			return nil, err
		}
		twins[name] = tw
	}
	return twins, nil
}

func modelOrDefault(name string) string {
	if name == "" {
		return "kooza"
	}
	return name
}

// provisionTraceFromSpec generates the request's workload from its spec
// reference. An explicitly-set request seed overrides the spec's own.
func provisionTraceFromSpec(req ProvisionRequest, explicitSeed bool) (*Trace, error) {
	s, err := spec.Resolve(req.Spec)
	if err != nil {
		return nil, err
	}
	var opts spec.Options
	if explicitSeed {
		opts.Seed = req.Seed
	}
	c, err := s.Compile(opts)
	if err != nil {
		return nil, err
	}
	return c.Generate(req.Workers)
}
