package dcmodel_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"dcmodel"
)

// mapreduceRequest is the EXPERIMENTS.md provisioning recipe: the PR 9
// manual twin search on the mapreduce scenario chose 21 servers for a
// 20 ms p95; the optimizer must reproduce it.
func mapreduceRequest() dcmodel.ProvisionRequest {
	return dcmodel.ProvisionRequest{
		Spec:      "mapreduce",
		Objective: dcmodel.ProvisionObjective{TargetSeconds: 0.02},
		Space:     dcmodel.ProvisionSpace{MaxServers: 32},
	}
}

// TestProvisionMapreduce is the PR acceptance criterion: the optimizer
// reproduces the manual 21-server answer, byte-identical across worker
// counts, and both strategies agree on it.
func TestProvisionMapreduce(t *testing.T) {
	if testing.Short() {
		t.Skip("spec generation + DES validation in -short mode")
	}
	for _, strategy := range []string{dcmodel.StrategyCoordinate, dcmodel.StrategyEvolve} {
		var want []byte
		for _, workers := range []int{1, 4, 8} {
			req := mapreduceRequest()
			req.Strategy = strategy
			req.Workers = workers
			plan, err := dcmodel.Provision(context.Background(), req)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strategy, workers, err)
			}
			if plan.Chosen.Servers != 21 {
				t.Fatalf("%s workers=%d: chose %d servers, want 21", strategy, workers, plan.Chosen.Servers)
			}
			if !plan.Feasible || plan.Validated == nil || !plan.Validated.Passed {
				t.Fatalf("%s workers=%d: plan not DES-validated: feasible=%v validated=%+v",
					strategy, workers, plan.Feasible, plan.Validated)
			}
			if plan.TwinEvals <= plan.DESRuns {
				t.Fatalf("twin-first contract: %d twin evals vs %d DES runs", plan.TwinEvals, plan.DESRuns)
			}
			got, err := json.Marshal(plan)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if string(got) != string(want) {
				t.Fatalf("%s: plan bytes differ at workers=%d", strategy, workers)
			}
		}
	}
}

// TestProvisionValidation: requests without a workload or with structural
// problems wrap ErrBadConfig.
func TestProvisionValidation(t *testing.T) {
	cases := []dcmodel.ProvisionRequest{
		{Objective: dcmodel.ProvisionObjective{TargetSeconds: 0.02}}, // no trace, no spec
		{Spec: "mapreduce", Objective: dcmodel.ProvisionObjective{TargetSeconds: -1}},
		{Spec: "mapreduce", Objective: dcmodel.ProvisionObjective{TargetSeconds: 0.02},
			Space: dcmodel.ProvisionSpace{Platforms: []string{"quantum"}}},
	}
	for i, req := range cases {
		if _, err := dcmodel.Provision(context.Background(), req); !errors.Is(err, dcmodel.ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	if _, err := dcmodel.Provision(context.Background(), dcmodel.ProvisionRequest{
		Spec:      "mapreduce",
		Model:     "tarot",
		Objective: dcmodel.ProvisionObjective{TargetSeconds: 0.02},
	}); err == nil {
		t.Error("unknown model should fail")
	}
}

// TestProvisionNoFeasibleConfig: an unreachable target surfaces the
// sentinel with the best-effort plan intact.
func TestProvisionNoFeasibleConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("spec generation in -short mode")
	}
	req := mapreduceRequest()
	req.Objective.TargetSeconds = 1e-9
	plan, err := dcmodel.Provision(context.Background(), req)
	if !errors.Is(err, dcmodel.ErrNoFeasibleConfig) {
		t.Fatalf("err = %v, want ErrNoFeasibleConfig", err)
	}
	if plan.Feasible || len(plan.Trail) == 0 {
		t.Fatalf("best-effort plan missing its audit trail: feasible=%v steps=%d", plan.Feasible, len(plan.Trail))
	}
}

// TestProvisionPlatformCatalog: the exported catalog backs the space's
// platform names.
func TestProvisionPlatformCatalog(t *testing.T) {
	cat := dcmodel.ProvisionPlatforms()
	if len(cat) < 2 {
		t.Fatalf("catalog has %d platforms, want >= 2", len(cat))
	}
	if cat[0].Name != "big-core" {
		t.Fatalf("catalog[0] = %q, want big-core", cat[0].Name)
	}
	for _, p := range cat {
		if p.NewServer == nil || p.NewServer() == nil {
			t.Fatalf("platform %s has no hardware constructor", p.Name)
		}
	}
}
