package dcmodel

import (
	"math/rand"

	"dcmodel/internal/dapper"
	"dcmodel/internal/gwp"
	"dcmodel/internal/kooza"
	"dcmodel/internal/obs"
	"dcmodel/internal/power"
	"dcmodel/internal/sqs"
)

// Facade over the observation and applicability tooling: Dapper-style
// request tracing, GWP-style cluster profiling, SQS-style datacenter
// sizing, and the power/energy models of the paper's §5.

// Tracing (Dapper) re-exports.
type (
	// Tracer collects sampled request trace trees.
	Tracer = dapper.Tracer
	// TraceTree is one request's assembled span tree.
	TraceTree = dapper.Tree
	// TraceRecorder receives finished span trees — the single tracing seam
	// shared by the GFS simulator (RunConfig.Recorder), the replay engine
	// (Platform.Recorder), the serving daemon (ServeConfig.Obs) and
	// RecordRequests. Collectors, bounded rings and sampling decorators all
	// implement or wrap it.
	TraceRecorder = dapper.Recorder
	// TraceCollector is the simplest TraceRecorder: it keeps every
	// recorded tree in memory (Trees returns them in record order).
	TraceCollector = dapper.Collector
	// TraceRing is a bounded TraceRecorder keeping the most recent trees,
	// evicting the oldest when full.
	TraceRing = obs.TraceRing
	// ObsOptions configures the serving daemon's observability layer
	// (ServeConfig.Obs): trace sampling rate, trace ring capacity, an
	// extra TraceRecorder tap, and the /debug/pprof/ mount.
	ObsOptions = obs.Options
	// Observer bundles a metrics registry and a TraceRecorder for
	// WithObserver; either half may be nil.
	Observer = obs.Observer
	// MetricsRegistry is a concurrency-safe metric registry rendered in
	// the Prometheus plain-text exposition format.
	MetricsRegistry = obs.Registry
)

// DefaultObsOptions returns the recommended daemon observability
// settings: 1-in-1024 trace sampling into a 128-tree ring, pprof off.
func DefaultObsOptions() ObsOptions { return obs.DefaultOptions() }

// NewTraceRing returns a bounded TraceRecorder holding up to capacity
// trees (minimum 1).
func NewTraceRing(capacity int) *TraceRing { return obs.NewTraceRing(capacity) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RecordRequests replays a workload through deterministic 1-in-sampleEvery
// head sampling and delivers each sampled request's span tree to rec,
// returning how many requests were seen and recorded:
//
//	var c dcmodel.TraceCollector
//	started, sampled, err := dcmodel.RecordRequests(tr, 1000, &c)
func RecordRequests(tr *Trace, sampleEvery int, rec TraceRecorder) (started, sampled int64, err error) {
	return dapper.RecordWorkload(tr, sampleEvery, rec)
}

// Profiling (GWP) re-exports.
type (
	// Profile is a cluster-wide sampled profile.
	Profile = gwp.Profile
	// ProfileOptions configures profile collection.
	ProfileOptions = gwp.Options
)

// CollectProfile samples a workload trace across machines.
func CollectProfile(tr *Trace, opts ProfileOptions) (*Profile, error) {
	return gwp.Collect(tr, opts)
}

// Sizing (SQS) re-exports.
type (
	// SQSModel is an empirical workload model for farm sizing.
	SQSModel = sqs.Model
	// SQSResult is one evaluated farm configuration.
	SQSResult = sqs.Result
)

// CharacterizeSQS builds an SQS empirical model from a trace with the
// given bounded sample budget.
func CharacterizeSQS(tr *Trace, maxSamples int, seed int64) (*SQSModel, error) {
	r := rand.New(rand.NewSource(seed))
	c, err := sqs.NewCharacterizer(maxSamples, r)
	if err != nil {
		return nil, err
	}
	if err := c.ObserveTrace(tr); err != nil {
		return nil, err
	}
	return c.Model()
}

// Power re-exports.
type (
	// ServerPowerModel is a per-subsystem linear power model.
	ServerPowerModel = power.ServerPower
	// EnergyBreakdown is a per-subsystem energy accounting.
	EnergyBreakdown = power.Breakdown
)

// BigCorePower and SmallCorePower return the two reference server power
// models used by the server-configuration study.
func BigCorePower() ServerPowerModel   { return power.BigCoreServer() }
func SmallCorePower() ServerPowerModel { return power.SmallCoreServer() }

// ServerEnergy accounts one server's energy over a trace.
func ServerEnergy(tr *Trace, server int, sp ServerPowerModel) (EnergyBreakdown, error) {
	return power.Energy(tr, server, sp)
}

// ClusterEnergy accounts the whole cluster's energy over a trace.
func ClusterEnergy(tr *Trace, sp ServerPowerModel) (EnergyBreakdown, error) {
	return power.ClusterEnergy(tr, sp)
}

// FeatureReport is the PCA feature-space analysis of a trace (§4).
type FeatureReport = kooza.FeatureReport

// AnalyzeFeatures runs the standardized-PCA feature-space analysis,
// reporting the workload's effective dimensionality and what loads on the
// leading components.
func AnalyzeFeatures(tr *Trace) (*FeatureReport, error) {
	return kooza.FeatureAnalysis(tr)
}
