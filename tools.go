package dcmodel

import (
	"math/rand"

	"dcmodel/internal/dapper"
	"dcmodel/internal/gwp"
	"dcmodel/internal/kooza"
	"dcmodel/internal/power"
	"dcmodel/internal/sqs"
)

// Facade over the observation and applicability tooling: Dapper-style
// request tracing, GWP-style cluster profiling, SQS-style datacenter
// sizing, and the power/energy models of the paper's §5.

// Tracing (Dapper) re-exports.
type (
	// Tracer collects sampled request trace trees.
	Tracer = dapper.Tracer
	// TraceTree is one request's assembled span tree.
	TraceTree = dapper.Tree
)

// TraceRequests replays a workload through a 1-in-sampleEvery sampling
// tracer and returns it; call Trees on the result for the sampled trees.
func TraceRequests(tr *Trace, sampleEvery int) (*Tracer, error) {
	return dapper.TraceWorkload(tr, sampleEvery)
}

// Profiling (GWP) re-exports.
type (
	// Profile is a cluster-wide sampled profile.
	Profile = gwp.Profile
	// ProfileOptions configures profile collection.
	ProfileOptions = gwp.Options
)

// CollectProfile samples a workload trace across machines.
func CollectProfile(tr *Trace, opts ProfileOptions) (*Profile, error) {
	return gwp.Collect(tr, opts)
}

// Sizing (SQS) re-exports.
type (
	// SQSModel is an empirical workload model for farm sizing.
	SQSModel = sqs.Model
	// SQSResult is one evaluated farm configuration.
	SQSResult = sqs.Result
)

// CharacterizeSQS builds an SQS empirical model from a trace with the
// given bounded sample budget.
func CharacterizeSQS(tr *Trace, maxSamples int, seed int64) (*SQSModel, error) {
	r := rand.New(rand.NewSource(seed))
	c, err := sqs.NewCharacterizer(maxSamples, r)
	if err != nil {
		return nil, err
	}
	if err := c.ObserveTrace(tr); err != nil {
		return nil, err
	}
	return c.Model()
}

// Power re-exports.
type (
	// ServerPowerModel is a per-subsystem linear power model.
	ServerPowerModel = power.ServerPower
	// EnergyBreakdown is a per-subsystem energy accounting.
	EnergyBreakdown = power.Breakdown
)

// BigCorePower and SmallCorePower return the two reference server power
// models used by the server-configuration study.
func BigCorePower() ServerPowerModel   { return power.BigCoreServer() }
func SmallCorePower() ServerPowerModel { return power.SmallCoreServer() }

// ServerEnergy accounts one server's energy over a trace.
func ServerEnergy(tr *Trace, server int, sp ServerPowerModel) (EnergyBreakdown, error) {
	return power.Energy(tr, server, sp)
}

// ClusterEnergy accounts the whole cluster's energy over a trace.
func ClusterEnergy(tr *Trace, sp ServerPowerModel) (EnergyBreakdown, error) {
	return power.ClusterEnergy(tr, sp)
}

// FeatureReport is the PCA feature-space analysis of a trace (§4).
type FeatureReport = kooza.FeatureReport

// AnalyzeFeatures runs the standardized-PCA feature-space analysis,
// reporting the workload's effective dimensionality and what loads on the
// leading components.
func AnalyzeFeatures(tr *Trace) (*FeatureReport, error) {
	return kooza.FeatureAnalysis(tr)
}
