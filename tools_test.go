package dcmodel

import (
	"math/rand"
	"testing"
)

func TestTraceRequestsFacade(t *testing.T) {
	tr := simulate(t, 1000, 20, 20)
	tracer, err := TraceRequests(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	started, sampled := tracer.SamplingStats()
	if started != 1000 || sampled != 10 {
		t.Errorf("sampling %d/%d", started, sampled)
	}
	trees, err := tracer.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 10 {
		t.Errorf("trees = %d", len(trees))
	}
	for _, tree := range trees {
		if tree.Latency() <= 0 {
			t.Error("sampled tree has zero latency")
		}
	}
}

func TestCollectProfileFacade(t *testing.T) {
	tr := simulate(t, 1500, 20, 21)
	p, err := CollectProfile(tr, ProfileOptions{Period: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Machines) != 1 || len(p.Classes) != 2 {
		t.Errorf("profile shape: %d machines, %d classes", len(p.Machines), len(p.Classes))
	}
	if p.Machines[0].Busy[Storage] <= 0 {
		t.Error("no storage activity profiled")
	}
}

func TestCharacterizeSQSFacade(t *testing.T) {
	tr := simulate(t, 2000, 20, 22)
	m, err := CharacterizeSQS(tr, 5000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate < 15 || m.Rate > 25 {
		t.Errorf("rate = %g", m.Rate)
	}
	res, err := m.Evaluate(4, 5000, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 4 || res.MeanResponse <= 0 {
		t.Errorf("result = %+v", res)
	}
	if _, err := CharacterizeSQS(&Trace{}, 100, 1); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestAnalyzeFeaturesFacade(t *testing.T) {
	tr := simulate(t, 1000, 20, 26)
	rep, err := AnalyzeFeatures(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components95 < 1 || rep.Components95 > 8 {
		t.Errorf("components = %d", rep.Components95)
	}
	if _, err := AnalyzeFeatures(&Trace{}); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestEnergyFacade(t *testing.T) {
	tr := simulate(t, 1000, 20, 25)
	big, err := ServerEnergy(tr, 0, BigCorePower())
	if err != nil {
		t.Fatal(err)
	}
	small, err := ServerEnergy(tr, 0, SmallCorePower())
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalJ >= big.TotalJ {
		t.Error("small-core should draw less energy")
	}
	cluster, err := ClusterEnergy(tr, BigCorePower())
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Requests != 1000 {
		t.Errorf("cluster requests = %d", cluster.Requests)
	}
}
