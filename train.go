package dcmodel

import (
	"fmt"
	"io"
	"math/rand"

	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
)

// Approach names one of the paper's three modeling approaches. It selects
// the trainer behind Train and the decoder behind LoadModel.
type Approach int

const (
	// Kooza is the paper's combined approach: per-subsystem Markov models,
	// a network queueing model and a time-dependency queue.
	Kooza Approach = iota
	// InBreadth is the per-subsystem baseline: four independent feature
	// models with no cross-subsystem structure.
	InBreadth
	// InDepth is the request-flow baseline: a queueing model of request
	// classes and their phase paths.
	InDepth
)

// String returns the approach's canonical name as used in Table 1.
func (a Approach) String() string {
	switch a {
	case Kooza:
		return "KOOZA"
	case InBreadth:
		return "in-breadth"
	case InDepth:
		return "in-depth"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// ParseApproach maps an approach name (as printed by String, matched
// case-insensitively for ASCII letters) back to its value.
func ParseApproach(s string) (Approach, error) {
	switch lowerASCII(s) {
	case "kooza":
		return Kooza, nil
	case "in-breadth", "inbreadth":
		return InBreadth, nil
	case "in-depth", "indepth":
		return InDepth, nil
	default:
		return 0, fmt.Errorf("dcmodel: unknown approach %q (want kooza, in-breadth or in-depth)", s)
	}
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Model is a trained workload model, whatever the approach. Every model
// synthesizes traces, characterizes its own structure, reports its size
// and serializes itself; the concrete *KoozaModel, *InBreadthModel and
// *InDepthModel remain reachable through the deprecated TrainX functions
// for callers that need approach-specific surface.
type Model interface {
	// Approach identifies which modeling approach produced this model.
	Approach() Approach
	// Synthesize generates n synthetic requests using r.
	Synthesize(n int, r *rand.Rand) (*Trace, error)
	// SynthesizeBatch is the bulk-generation flavor of Synthesize: same
	// seed, byte-identical trace, but span storage is reserved a slab of
	// requests at a time, so large n amortizes the per-request arena
	// bookkeeping. The daemon and the sharded synthesizer ride this path.
	SynthesizeBatch(n int, r *rand.Rand) (*Trace, error)
	// Characterize renders the model's learned structure as text.
	Characterize() string
	// NumParams counts the model's free parameters (the Table 1
	// "complexity" axis).
	NumParams() int
	// Save serializes the model as JSON; LoadModel restores it.
	Save(w io.Writer) error
}

// trainSettings accumulates TrainOption effects. Shared knobs write into
// both per-approach option structs; the trainer picks the one it needs.
type trainSettings struct {
	kooza     KoozaOptions
	inbreadth InBreadthOptions
	obs       *Observer
}

// TrainOption customizes Train. The zero settings reproduce the paper's
// defaults for every approach.
type TrainOption func(*trainSettings)

// WithStorageRegions sets how many LBN regions the storage Markov models
// distinguish (Kooza and InBreadth; default 32).
func WithStorageRegions(n int) TrainOption {
	return func(s *trainSettings) {
		s.kooza.StorageRegions = n
		s.inbreadth.StorageRegions = n
	}
}

// WithCPUStates sets the CPU-utilization quantization level count (Kooza
// and InBreadth; default 8).
func WithCPUStates(n int) TrainOption {
	return func(s *trainSettings) {
		s.kooza.CPUStates = n
		s.inbreadth.CPUStates = n
	}
}

// WithSmoothing sets the Markov transition-count smoothing constant (Kooza
// and InBreadth; default 0.01).
func WithSmoothing(alpha float64) TrainOption {
	return func(s *trainSettings) {
		s.kooza.Smoothing = alpha
		s.inbreadth.Smoothing = alpha
	}
}

// WithDiskBlocks fixes the modeled disk capacity in blocks instead of
// inferring it from the trace (Kooza and InBreadth).
func WithDiskBlocks(n int64) TrainOption {
	return func(s *trainSettings) {
		s.kooza.DiskBlocks = n
		s.inbreadth.DiskBlocks = n
	}
}

// WithKoozaOptions replaces the full KOOZA option struct, for knobs that
// only KOOZA has (hierarchical storage, arrival states). It overrides any
// shared option that precedes it and is overridden by any that follows.
func WithKoozaOptions(o KoozaOptions) TrainOption {
	return func(s *trainSettings) { s.kooza = o }
}

// WithInBreadthOptions replaces the full in-breadth option struct.
func WithInBreadthOptions(o InBreadthOptions) TrainOption {
	return func(s *trainSettings) { s.inbreadth = o }
}

// WithObserver instruments the training run: one span tree (root "train:"
// plus a fit stage child) goes to the observer's TraceRecorder, and the
// fit's wall time and allocation land in the observer's registry as
// dcmodel_stage_seconds / dcmodel_stage_alloc_bytes. It replaces ad-hoc
// timing around Train calls with the same obs substrate the serving
// daemon uses; a nil observer observes nothing.
func WithObserver(o *Observer) TrainOption {
	return func(s *trainSettings) { s.obs = o }
}

// Train fits the selected approach to tr and returns it behind the common
// Model interface:
//
//	m, err := dcmodel.Train(tr, dcmodel.Kooza)
//	synth, err := m.Synthesize(4000, rand.New(rand.NewSource(2)))
//
// It replaces TrainKooza, TrainInBreadth and TrainInDepth, which remain as
// deprecated wrappers returning the concrete model types.
func Train(tr *Trace, a Approach, opts ...TrainOption) (Model, error) {
	var s trainSettings
	for _, opt := range opts {
		opt(&s)
	}
	span := s.obs.StartSpan("train:" + a.String())
	stop := s.obs.Stage(span, "fit."+lowerASCII(a.String()))
	m, err := trainApproach(tr, a, s)
	stop()
	if err != nil {
		span.Annotate("error: %v", err)
	} else if tr != nil {
		span.Annotate("requests=%d params=%d", tr.Len(), m.NumParams())
	}
	span.Finish()
	return m, err
}

// trainApproach dispatches to the selected trainer.
func trainApproach(tr *Trace, a Approach, s trainSettings) (Model, error) {
	switch a {
	case Kooza:
		m, err := kooza.Train(tr, s.kooza)
		if err != nil {
			return nil, err
		}
		return koozaTrained{m}, nil
	case InBreadth:
		m, err := inbreadth.Train(tr, s.inbreadth)
		if err != nil {
			return nil, err
		}
		return inBreadthTrained{m}, nil
	case InDepth:
		m, err := indepth.Train(tr)
		if err != nil {
			return nil, err
		}
		return inDepthTrained{m}, nil
	default:
		return nil, fmt.Errorf("dcmodel: unknown approach %d: %w", int(a), ErrBadConfig)
	}
}

// LoadModel restores a model previously serialized with Model.Save (or the
// approach packages' own Save functions). The approach selects the decoder;
// loading a stream written by a different approach fails.
func LoadModel(r io.Reader, a Approach) (Model, error) {
	switch a {
	case Kooza:
		m, err := kooza.Load(r)
		if err != nil {
			return nil, err
		}
		return koozaTrained{m}, nil
	case InBreadth:
		m, err := inbreadth.Load(r)
		if err != nil {
			return nil, err
		}
		return inBreadthTrained{m}, nil
	case InDepth:
		m, err := indepth.Load(r)
		if err != nil {
			return nil, err
		}
		return inDepthTrained{m}, nil
	default:
		return nil, fmt.Errorf("dcmodel: unknown approach %d: %w", int(a), ErrBadConfig)
	}
}

// koozaTrained adapts *kooza.Model to the Model interface. Synthesize and
// NumParams are promoted from the embedded model.
type koozaTrained struct{ *kooza.Model }

func (koozaTrained) Approach() Approach       { return Kooza }
func (m koozaTrained) Characterize() string   { return m.Describe() }
func (m koozaTrained) Save(w io.Writer) error { return kooza.Save(w, m.Model) }

type inBreadthTrained struct{ *inbreadth.Model }

func (inBreadthTrained) Approach() Approach       { return InBreadth }
func (m inBreadthTrained) Characterize() string   { return m.Describe() }
func (m inBreadthTrained) Save(w io.Writer) error { return inbreadth.Save(w, m.Model) }

type inDepthTrained struct{ *indepth.Model }

func (inDepthTrained) Approach() Approach       { return InDepth }
func (m inDepthTrained) Characterize() string   { return m.Describe() }
func (m inDepthTrained) Save(w io.Writer) error { return indepth.Save(w, m.Model) }
