package dcmodel

import (
	"math/rand"
	"testing"

	"dcmodel/internal/hw"
	"dcmodel/internal/stats"
)

// Platform transferability: the paper's central use case is "evaluating
// different server configurations without access to real DC application
// source-code". That requires the model, trained on platform A, to predict
// behavior on platform B. Feature-based synthesis (KOOZA) transfers: the
// synthetic workload replayed on B must match the original replayed on B.
// The in-depth baseline records platform-A durations and cannot transfer —
// the quantified version of the paper's "impedes the derivation of a
// performance model" criticism.

// slowDiskPlatform is platform B: a 4x slower disk and 10x slower network.
func slowDiskPlatform() Platform {
	return Platform{NewServer: func() *hw.Server {
		s := DefaultPlatform().NewServer()
		s.Disk.TransferRate /= 4
		s.Net.Bandwidth /= 10
		return s
	}}
}

func TestKoozaTransfersAcrossPlatforms(t *testing.T) {
	// Train on platform A.
	orig := simulate(t, 4000, 20, 40)
	m, err := TrainKooza(orig, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := m.Synthesize(4000, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth on platform B: the original workload replayed there.
	pb := slowDiskPlatform()
	truthB, err := Replay(orig, pb)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction on platform B: the synthetic workload replayed there.
	predB, err := Replay(synth, pb)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range orig.Classes() {
		truth := stats.Mean(truthB.ByClass(class).Latencies())
		pred := stats.Mean(predB.ByClass(class).Latencies())
		if d := stats.RelError(truth, pred); d > 0.15 {
			t.Errorf("class %s platform-B latency deviation %g (%g vs %g)", class, d, pred, truth)
		}
	}
	// The platform change must actually matter (the experiment is not
	// vacuous): platform B is much slower.
	onA := stats.Mean(orig.Latencies())
	onB := stats.Mean(truthB.Latencies())
	if onB < 2*onA {
		t.Fatalf("platform B too similar: %g vs %g", onB, onA)
	}
}

func TestInDepthCannotTransfer(t *testing.T) {
	// The in-depth model's synthetic spans carry durations from platform
	// A and no features; its platform-B "prediction" (its own recorded
	// timings) misses the platform change entirely.
	orig := simulate(t, 3000, 20, 42)
	id, err := TrainInDepth(orig)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := id.Synthesize(3000, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	truthB, err := Replay(orig, slowDiskPlatform())
	if err != nil {
		t.Fatal(err)
	}
	truth := stats.Mean(truthB.Latencies())
	// In-depth's only latency signal is its resampled platform-A timing.
	pred := stats.Mean(synth.Latencies())
	inDepthErr := stats.RelError(truth, pred)
	if inDepthErr < 0.4 {
		t.Fatalf("in-depth unexpectedly transferred: error %g", inDepthErr)
	}
	// KOOZA's transfer error on the same setup is far smaller.
	kz, err := TrainKooza(orig, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ksynth, err := kz.Synthesize(3000, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	kpredB, err := Replay(ksynth, slowDiskPlatform())
	if err != nil {
		t.Fatal(err)
	}
	koozaErr := stats.RelError(truth, stats.Mean(kpredB.Latencies()))
	if koozaErr*3 > inDepthErr {
		t.Errorf("KOOZA transfer error %g not clearly below in-depth %g", koozaErr, inDepthErr)
	}
}
