package dcmodel

import (
	"fmt"

	"dcmodel/internal/errs"
	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/twin"
)

// Analytical-twin re-exports. A Twin is the closed-form counterpart of the
// replay engine: the same trained model and platform, answered with
// queueing formulas instead of discrete-event simulation. Twin evaluation
// is deterministic (pure float arithmetic, no sampling) and runs in
// microseconds, which is what makes what-if exploration interactive.
type (
	// Twin is a compiled analytical twin (queueing-network form of a
	// trained model on a platform).
	Twin = twin.Twin
	// TwinStation is one subsystem service station of a twin.
	TwinStation = twin.Station
	// WhatIfQuery is one closed-form question against a twin: load
	// scaling, server loss, closed-loop populations, SLO sizing.
	WhatIfQuery = twin.Query
	// WhatIfAnswer is the solved steady state for a query.
	WhatIfAnswer = twin.Answer
	// WhatIfSLO is the latency objective of a provisioning search.
	WhatIfSLO = twin.SLO
)

// BuildTwin compiles a trained model into its analytical twin on the given
// platform. The three toolkit approaches all lower:
//
//   - KOOZA: per-class phase paths weighted by class and control-flow-path
//     shares, feature distributions pushed through the platform's hardware
//     cost functions, the semi-Markov arrival refinement folded into the
//     arrival moments, and the trained multi-server traffic split.
//   - in-breadth: the marginal per-subsystem feature models with the mean
//     span counts as visit ratios (single-server, like its synthesis).
//   - in-depth: the self-timed per-phase service distributions directly
//     (the platform's hardware models are not consulted).
//
// A Model implementation from outside the toolkit has no twin: BuildTwin
// returns an error wrapping ErrTwinUnsupported.
//
// The compiled Twin is immutable and safe for concurrent WhatIf calls:
//
//	tw, _ := dcmodel.BuildTwin(model, dcmodel.DefaultPlatform())
//	ans, _ := tw.WhatIf(dcmodel.WhatIfQuery{LoadFactor: 2})
func BuildTwin(m Model, p Platform) (*Twin, error) {
	if m == nil {
		return nil, fmt.Errorf("dcmodel: cannot build a twin of a nil model: %w", ErrBadConfig)
	}
	srv, err := platformServer(p)
	if err != nil {
		return nil, err
	}
	switch t := m.(type) {
	case koozaTrained:
		return twin.CompileKooza(t.Model, srv, p.Servers)
	case inBreadthTrained:
		return twin.CompileInBreadth(t.Model, srv, p.Servers)
	case inDepthTrained:
		return twin.CompileInDepth(t.Model)
	default:
		return nil, fmt.Errorf("dcmodel: %s model: %w", m.Approach(), errs.ErrTwinUnsupported)
	}
}

// platformServer materializes one platform server for twin compilation,
// defaulting to the GFS chunkserver hardware like DefaultPlatform does.
func platformServer(p Platform) (*hw.Server, error) {
	if p.NewServer == nil {
		return gfs.DefaultServerHW(), nil
	}
	srv := p.NewServer()
	if srv == nil {
		return nil, fmt.Errorf("dcmodel: platform NewServer returned nil: %w", ErrBadConfig)
	}
	return srv, nil
}
