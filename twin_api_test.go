package dcmodel

import (
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildTwinAllApproaches: every toolkit approach lowers to a working
// twin whose baseline answer (trained load, trained platform) is stable
// and sits above the no-contention demand floor.
func TestBuildTwinAllApproaches(t *testing.T) {
	tr := simulate(t, 1500, 20, 61)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		m, err := Train(tr, a)
		if err != nil {
			t.Fatalf("%s: train: %v", a, err)
		}
		tw, err := BuildTwin(m, DefaultPlatform())
		if err != nil {
			t.Fatalf("%s: BuildTwin: %v", a, err)
		}
		if tw.Approach != a.String() {
			t.Errorf("%s: twin approach %q", a, tw.Approach)
		}
		if tw.Lambda <= 0 || tw.TotalDemand() <= 0 {
			t.Errorf("%s: degenerate twin lambda=%g demand=%g", a, tw.Lambda, tw.TotalDemand())
		}
		ans, err := tw.WhatIf(WhatIfQuery{})
		if err != nil {
			t.Fatalf("%s: WhatIf: %v", a, err)
		}
		if !ans.Stable {
			t.Errorf("%s: trained load should be stable, got %+v", a, ans)
		}
		if ans.MeanResponseSeconds < tw.TotalDemand() {
			t.Errorf("%s: response %g below demand floor %g", a, ans.MeanResponseSeconds, tw.TotalDemand())
		}
	}
}

// TestWhatIfOneShot: the convenience wrapper equals BuildTwin + WhatIf.
func TestWhatIfOneShot(t *testing.T) {
	tr := simulate(t, 1200, 20, 62)
	m, err := Train(tr, Kooza)
	if err != nil {
		t.Fatal(err)
	}
	q := WhatIfQuery{LoadFactor: 2}
	direct, err := WhatIf(m, DefaultPlatform(), q)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := BuildTwin(m, DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	viaTwin, err := tw.WhatIf(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaTwin) {
		t.Fatalf("one-shot diverged: %+v vs %+v", direct, viaTwin)
	}
}

// foreignModel is a Model implementation from outside the toolkit.
type foreignModel struct{}

func (foreignModel) Approach() Approach { return Approach(99) }
func (foreignModel) Synthesize(int, *rand.Rand) (*Trace, error) {
	return nil, errors.New("not implemented")
}
func (foreignModel) SynthesizeBatch(int, *rand.Rand) (*Trace, error) {
	return nil, errors.New("not implemented")
}
func (foreignModel) Characterize() string { return "foreign model" }
func (foreignModel) NumParams() int       { return 0 }
func (foreignModel) Save(io.Writer) error { return errors.New("not implemented") }

// TestBuildTwinUnsupported: foreign Model implementations are rejected
// with the ErrTwinUnsupported sentinel, and nil models with ErrBadConfig.
func TestBuildTwinUnsupported(t *testing.T) {
	if _, err := BuildTwin(foreignModel{}, DefaultPlatform()); !errors.Is(err, ErrTwinUnsupported) {
		t.Fatalf("foreign model: want ErrTwinUnsupported, got %v", err)
	}
	if _, err := BuildTwin(nil, DefaultPlatform()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil model: want ErrBadConfig, got %v", err)
	}
}

// TestDeprecatedTrainShims: the deprecated concrete-type trainers remain
// behavior-identical to the Train facade.
func TestDeprecatedTrainShims(t *testing.T) {
	tr := simulate(t, 800, 20, 63)
	km, err := TrainKooza(tr, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := Train(tr, Kooza)
	if err != nil {
		t.Fatal(err)
	}
	if km.NumParams() != fm.NumParams() {
		t.Errorf("TrainKooza params %d != Train params %d", km.NumParams(), fm.NumParams())
	}
	bm, err := TrainInBreadth(tr, InBreadthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bm.TrainedOn != tr.Len() {
		t.Errorf("TrainInBreadth trained on %d, want %d", bm.TrainedOn, tr.Len())
	}
	dm, err := TrainInDepth(tr)
	if err != nil {
		t.Fatal(err)
	}
	if dm.TrainedOn != tr.Len() {
		t.Errorf("TrainInDepth trained on %d, want %d", dm.TrainedOn, tr.Len())
	}
}
