package dcmodel

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"dcmodel/internal/spec"
)

// twinDeviationBounds pins how far each approach's analytical twin may sit
// from the discrete-event replay of its own synthetic workload, across all
// six scenario presets. The bounds are regression fences around measured
// behavior, not accuracy claims: KOOZA's twin tracks the simulator within
// ~30% on every preset; the in-depth twin is self-timed and stays within
// ~55%; the class-blind in-breadth twin can sit far off on skewed
// multi-class scenarios (rag) and only gets an order-of-magnitude fence.
var twinDeviationBounds = map[string]float64{
	"KOOZA":      0.35,
	"in-depth":   0.60,
	"in-breadth": 8.0,
}

// TestTwinDeviationAcrossPresets runs the full cross-examination on every
// embedded scenario preset and bounds the twin-vs-DES deviation column:
// every approach must produce a twin (deviation >= 0, never the -1 "no
// twin" sentinel) and stay inside its pinned tolerance.
func TestTwinDeviationAcrossPresets(t *testing.T) {
	for _, name := range []string{"analytics", "chat", "incast", "mapreduce", "rag", "webtier"} {
		t.Run(name, func(t *testing.T) {
			s, err := spec.Resolve(name)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Compile(spec.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := c.Generate(0)
			if err != nil {
				t.Fatal(err)
			}
			scores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{
				Requests: 1500, Seed: 1, SkipThroughput: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(scores) != 3 {
				t.Fatalf("got %d scorecard rows, want 3", len(scores))
			}
			for _, sc := range scores {
				bound, ok := twinDeviationBounds[sc.Name]
				if !ok {
					t.Fatalf("no deviation bound pinned for approach %q", sc.Name)
				}
				if sc.TwinDeviation < 0 {
					t.Errorf("%s: no twin deviation recorded (got %g)", sc.Name, sc.TwinDeviation)
					continue
				}
				if sc.TwinDeviation > bound {
					t.Errorf("%s: twin deviation %.4f exceeds pinned bound %.2f", sc.Name, sc.TwinDeviation, bound)
				}
			}
			rendered := RenderScores(scores)
			if !strings.Contains(rendered, "TwinDev") {
				t.Errorf("rendered scorecard is missing the TwinDev column:\n%s", rendered)
			}
		})
	}
}

// TestWhatIfGOMAXPROCSInvariant pins the determinism contract from the
// other side: a what-if answer is pure single-threaded float arithmetic, so
// its JSON encoding must be byte-identical whatever GOMAXPROCS is.
func TestWhatIfGOMAXPROCSInvariant(t *testing.T) {
	tr := simulate(t, 1200, 20, 64)
	m, err := Train(tr, Kooza)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := BuildTwin(m, DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	q := WhatIfQuery{LoadFactor: 1.5, SLO: &WhatIfSLO{Quantile: 0.95, TargetSeconds: 0.2}}
	answer := func() []byte {
		ans, err := tw.WhatIf(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(ans)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	one := answer()
	runtime.GOMAXPROCS(prev)
	if prev == 1 {
		runtime.GOMAXPROCS(4)
	}
	many := answer()
	if string(one) != string(many) {
		t.Fatalf("what-if answer depends on GOMAXPROCS:\n%s\nvs\n%s", one, many)
	}
}
