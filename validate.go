package dcmodel

import (
	"fmt"
	"math/rand"
	"strings"

	"dcmodel/internal/kooza"
	"dcmodel/internal/replay"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Validation is the Table 2 pipeline: train KOOZA on a trace, synthesize,
// replay on the same platform, and compare per-class request features and
// latency between the original and synthetic workloads.

// FeatureRow is one original-vs-synthetic comparison row, matching the
// columns of the paper's Table 2.
type FeatureRow struct {
	Class string
	// Network request size (bytes): the request's payload transfer.
	NetOrig, NetSynth float64
	// CPU utilization (fraction).
	UtilOrig, UtilSynth float64
	// Memory access size (bytes) and dominant type.
	MemOrig, MemSynth     float64
	MemOpOrig, MemOpSynth Op
	// Storage I/O size (bytes) and dominant type.
	StorOrig, StorSynth     float64
	StorOpOrig, StorOpSynth Op
	// Latency (seconds), measured on the same platform.
	LatOrig, LatSynth float64
}

// FeatureDeviation returns the maximum relative deviation across the
// feature columns (the paper reports <= 1%).
func (r FeatureRow) FeatureDeviation() float64 {
	devs := []float64{
		stats.RelError(r.NetOrig, r.NetSynth),
		stats.RelError(r.UtilOrig, r.UtilSynth),
		stats.RelError(r.MemOrig, r.MemSynth),
		stats.RelError(r.StorOrig, r.StorSynth),
	}
	var m float64
	for _, d := range devs {
		if d > m {
			m = d
		}
	}
	return m
}

// LatencyDeviation returns the relative latency deviation (the paper
// reports <= 6.6%).
func (r FeatureRow) LatencyDeviation() float64 {
	return stats.RelError(r.LatOrig, r.LatSynth)
}

// ValidationResult is the outcome of the Table 2 pipeline.
type ValidationResult struct {
	Rows []FeatureRow
	// Model is the trained KOOZA model (for Describe / inspection).
	Model *KoozaModel
}

// Validate runs the Table 2 pipeline: train on tr, synthesize n requests,
// replay on the platform, compare per class.
func Validate(tr *Trace, n int, p Platform, opts KoozaOptions, seed int64) (*ValidationResult, error) {
	model, err := kooza.Train(tr, opts)
	if err != nil {
		return nil, err
	}
	synth, err := model.Synthesize(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	timed, err := replay.Run(synth, p)
	if err != nil {
		return nil, err
	}
	res := &ValidationResult{Model: model}
	for _, class := range tr.Classes() {
		ot := tr.ByClass(class)
		st := synth.ByClass(class)
		tt := timed.ByClass(class)
		if st.Len() == 0 {
			return nil, fmt.Errorf("dcmodel: class %q missing from synthetic trace", class)
		}
		row := FeatureRow{Class: class}
		row.NetOrig = meanNetPayload(ot)
		row.NetSynth = meanNetPayload(st)
		row.UtilOrig = meanFeature(ot, trace.CPU, utilOf)
		row.UtilSynth = meanFeature(st, trace.CPU, utilOf)
		row.MemOrig = meanFeature(ot, trace.Memory, bytesOf)
		row.MemSynth = meanFeature(st, trace.Memory, bytesOf)
		row.StorOrig = meanFeature(ot, trace.Storage, bytesOf)
		row.StorSynth = meanFeature(st, trace.Storage, bytesOf)
		row.MemOpOrig = dominantOp(ot, trace.Memory)
		row.MemOpSynth = dominantOp(st, trace.Memory)
		row.StorOpOrig = dominantOp(ot, trace.Storage)
		row.StorOpSynth = dominantOp(st, trace.Storage)
		row.LatOrig = stats.Mean(ot.Latencies())
		row.LatSynth = stats.Mean(tt.Latencies())
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func bytesOf(s Span) float64 { return float64(s.Bytes) }
func utilOf(s Span) float64  { return s.Util }

func meanFeature(tr *Trace, sub Subsystem, f func(Span) float64) float64 {
	return stats.Mean(tr.SpanFeature(sub, f))
}

// meanNetPayload averages each request's network payload (its largest
// network transfer), the "request size" the paper's Table 2 reports.
func meanNetPayload(tr *Trace) float64 {
	var payloads []float64
	for _, r := range tr.Requests {
		var max int64
		for _, s := range r.SpansIn(trace.Network) {
			if s.Bytes > max {
				max = s.Bytes
			}
		}
		payloads = append(payloads, float64(max))
	}
	return stats.Mean(payloads)
}

func dominantOp(tr *Trace, sub Subsystem) Op {
	var reads, writes int
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(sub) {
			switch s.Op {
			case OpRead:
				reads++
			case OpWrite:
				writes++
			}
		}
	}
	if reads >= writes {
		return OpRead
	}
	return OpWrite
}

// Render formats the validation result in the layout of the paper's
// Table 2.
func (v *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Validation of request features and latency (KOOZA)\n")
	fmt.Fprintf(&b, "%-10s | %-10s | %-14s | %-10s | %-20s | %-20s | %-12s\n",
		"Class", "Row", "Network B", "CPU util", "Memory (B, type)", "Storage (B, type)", "Latency ms")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-10s | %-10s | %14.0f | %9.2f%% | %12.0f %-7s | %12.0f %-7s | %12.3f\n",
			r.Class, "original", r.NetOrig, 100*r.UtilOrig, r.MemOrig, r.MemOpOrig, r.StorOrig, r.StorOpOrig, 1000*r.LatOrig)
		fmt.Fprintf(&b, "%-10s | %-10s | %14.0f | %9.2f%% | %12.0f %-7s | %12.0f %-7s | %12.3f\n",
			"", "synthetic", r.NetSynth, 100*r.UtilSynth, r.MemSynth, r.MemOpSynth, r.StorSynth, r.StorOpSynth, 1000*r.LatSynth)
		fmt.Fprintf(&b, "%-10s | %-10s | %13.2f%% | %9.2f%% | %12.2f%% %-7s | %12.2f%% %-7s | %11.2f%%\n",
			"", "variation",
			100*stats.RelError(r.NetOrig, r.NetSynth),
			100*stats.RelError(r.UtilOrig, r.UtilSynth),
			100*stats.RelError(r.MemOrig, r.MemSynth), "",
			100*stats.RelError(r.StorOrig, r.StorSynth), "",
			100*r.LatencyDeviation())
	}
	return b.String()
}
